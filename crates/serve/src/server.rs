//! The TCP transport: acceptor, per-connection readers, and the ticker.
//!
//! Thread model (one server):
//!
//! ```text
//!            ┌──────────┐   lines    ┌─────────────┐  admitted   ┌─────────┐
//!  TCP  ────▶│ acceptor │──spawns──▶ │ reader (xN) │──try_send──▶│   bus   │
//!            └──────────┘            │ parse/admit │  (bounded,  └────┬────┘
//!                                    │ await reply │  per-class)      │ drain
//!                                    └─────────────┘                  ▼
//!                                          ▲                    ┌──────────┐
//!                                          │ reply via mpsc     │  ticker  │
//!                                          └────────────────────│ (engine) │
//!                                                               └──────────┘
//! ```
//!
//! Readers never touch the engine: they parse, classify, and either admit
//! the request to the bounded bus or bounce it (`overloaded`,
//! `shutting_down`). The single ticker thread owns the [`ServiceCore`],
//! drains the bus in arrival order, drops requests whose in-queue
//! deadline expired, runs timed epochs, and fans each response back
//! through the per-request channel. Graceful shutdown (the `shutdown` op
//! or [`Server::shutdown`]) closes the bus, finishes every admitted
//! request, flushes a final snapshot, and joins every thread.
//!
//! ## Sharded serving
//!
//! With [`ServeConfig::with_shards`] the server becomes a thin routing
//! tier over N independent shards, each owning its own [`ServiceCore`],
//! ticker thread, bounded bus, and WAL directory. Readers hash each
//! agent-bearing request to its owning shard through a seeded
//! consistent-hash ring ([`crate::shard::HashRing`]); `tick` fans out to
//! every shard in parallel and merges the per-shard epoch reports;
//! `snapshot`/`metrics`/`journal` aggregate with shard-tagged JSON.
//! After every fleet-wide epoch a coordinator
//! ([`crate::shard::Coordinator`]) rebalances capacity allotments
//! between shards from their aggregate demand, delivering each change
//! as a journaled `reallot` event so every shard's WAL stays a
//! complete, byte-for-byte replayable history. With one shard (the
//! default) the wire behavior is exactly the unsharded server's.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ref_market::{AgentId, MarketConfig, MarketEvent};

use crate::bus::{Bus, Quotas, SendError};
use crate::clock::{Clock, RealClock};
use crate::core::{JournalLimit, ReplApply, ServiceCore};
use crate::fault::FaultPlan;
use crate::json::Value;
use crate::metrics::{ServeMetrics, ServeMetricsSnapshot};
use crate::protocol::{
    error_response, not_primary_response, ok_response, parse_request, shard_unavailable_response,
    Envelope, Request,
};
use crate::repl::{
    fence_notify, repl_acceptor_loop, standby_loop, ReplCommand, ReplConfig, ReplShared, Role,
};
use crate::shard::{
    default_quorum, shard_market_config, CoordinationStatus, Coordinator, HashRing, ShardHealth,
};
use crate::wal::{self, WalConfig};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The market the server fronts.
    pub market: MarketConfig,
    /// Timer-driven epoch cadence; `None` runs epochs only on `tick`
    /// requests (deterministic mode for tests and examples).
    pub epoch_interval: Option<Duration>,
    /// Per-class bus quotas (the backpressure bound).
    pub quotas: Quotas,
    /// Retry hint attached to `overloaded` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Maximum simultaneously open connections; further accepts are
    /// bounced with `overloaded`.
    pub max_connections: usize,
    /// Journal retention cap (see [`JournalLimit`]).
    pub journal_limit: JournalLimit,
    /// Reader poll interval: how long a blocked read waits before
    /// re-checking the shutdown flag.
    pub read_timeout: Duration,
    /// How long a reader waits for the ticker's reply before giving up
    /// with a `timeout` response.
    pub reply_timeout: Duration,
    /// Durability: when set, every admitted event is appended to this
    /// write-ahead log before it is applied, and [`Server::recover`]
    /// can resume the market after a crash.
    pub wal: Option<WalConfig>,
    /// Replication: when set, this node is one half of a primary/standby
    /// pair (see [`ReplConfig`]). Requires a WAL — the replication
    /// stream *is* WAL shipping.
    pub repl: Option<ReplConfig>,
    /// Deterministic fault injection (testing seam; injects nothing by
    /// default).
    pub faults: FaultPlan,
    /// Number of market shards. 1 (the default) is the classic
    /// single-core server with unchanged wire behavior; above 1 the
    /// server routes agents across independent shards (see the module
    /// docs). Sharding currently excludes in-process replication — run
    /// one replicated pair per shard instead.
    pub shards: usize,
    /// Seed of the consistent-hash ring assigning agents to shards.
    /// Every process that agrees on `(ring_seed, shards)` agrees on
    /// placement.
    pub ring_seed: u64,
    /// When this server fronts exactly one shard of an externally
    /// sharded deployment, tags `not_primary` redirects (and `ping`)
    /// with that shard index so clients scope their leader hints.
    pub shard_tag: Option<u64>,
    /// Cross-shard coordination audit: after the coordinator's warmup
    /// rounds, the temporal drift between shard allotments and the
    /// instantaneous fair targets must stay within this fraction of
    /// total capacity.
    pub drift_bound: f64,
    /// Minimum number of shards that must report a tick before the
    /// coordinator reallots capacity; below it allotments freeze (see
    /// the module docs). `None` (the default) uses the rounded-up
    /// majority ⌈(N+1)/2⌉ from [`default_quorum`].
    pub quorum: Option<usize>,
    /// How long the router waits for any one shard's tick reply before
    /// declaring the tick missed. A budget far below `reply_timeout`
    /// keeps one slow shard from stalling the fleet clock.
    pub shard_tick_budget: Duration,
    /// Consecutive clean ticks a Suspect shard must deliver before the
    /// router declares it Healthy again.
    pub recovery_clean_ticks: u64,
    /// The clock that heartbeat, election, and timed-epoch scheduling
    /// read. [`RealClock`] (the default) is a zero-cost monotonic
    /// reading; the deterministic simulator substitutes virtual time.
    /// The seam covers time *reads* — blocking waits stay real.
    pub clock: Arc<dyn Clock>,
    /// Seed of the server's deterministic randomness (today: the seeded
    /// election-timeout jitter that staggers competing standbys).
    /// Distinct nodes should get distinct seeds.
    pub rng_seed: u64,
}

impl ServeConfig {
    /// A configuration with default serving knobs around `market`.
    pub fn new(market: MarketConfig) -> ServeConfig {
        ServeConfig {
            market,
            epoch_interval: Some(Duration::from_millis(10)),
            quotas: Quotas::default(),
            retry_after_ms: 5,
            max_connections: 256,
            journal_limit: JournalLimit::default(),
            read_timeout: Duration::from_millis(50),
            reply_timeout: Duration::from_secs(30),
            wal: None,
            repl: None,
            faults: FaultPlan::default(),
            shards: 1,
            ring_seed: 0x5EED,
            shard_tag: None,
            drift_bound: 0.25,
            quorum: None,
            shard_tick_budget: Duration::from_secs(5),
            recovery_clean_ticks: 3,
            clock: Arc::new(RealClock),
            rng_seed: 0x5EED,
        }
    }

    /// Substitutes the clock behind heartbeat/election/epoch timing.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> ServeConfig {
        self.clock = clock;
        self
    }

    /// Sets the seed of the server's deterministic randomness.
    pub fn with_rng_seed(mut self, seed: u64) -> ServeConfig {
        self.rng_seed = seed;
        self
    }

    /// Sets the epoch cadence (`None` = tick-on-request only).
    pub fn with_epoch_interval(mut self, interval: Option<Duration>) -> ServeConfig {
        self.epoch_interval = interval;
        self
    }

    /// Sets the per-class quotas.
    pub fn with_quotas(mut self, quotas: Quotas) -> ServeConfig {
        self.quotas = quotas;
        self
    }

    /// Sets the journal retention cap.
    pub fn with_journal_limit(mut self, limit: JournalLimit) -> ServeConfig {
        self.journal_limit = limit;
        self
    }

    /// Sets the maximum simultaneous connections.
    pub fn with_max_connections(mut self, max: usize) -> ServeConfig {
        self.max_connections = max;
        self
    }

    /// Attaches a write-ahead log for durability.
    pub fn with_wal(mut self, wal: WalConfig) -> ServeConfig {
        self.wal = Some(wal);
        self
    }

    /// Makes this node one half of a replicated pair (requires a WAL).
    pub fn with_repl(mut self, repl: ReplConfig) -> ServeConfig {
        self.repl = Some(repl);
        self
    }

    /// Arms a deterministic fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> ServeConfig {
        self.faults = faults;
        self
    }

    /// Sets the number of market shards (at least 1).
    pub fn with_shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards;
        self
    }

    /// Sets the consistent-hash ring seed.
    pub fn with_ring_seed(mut self, seed: u64) -> ServeConfig {
        self.ring_seed = seed;
        self
    }

    /// Tags this server as one shard of an externally sharded fleet.
    pub fn with_shard_tag(mut self, shard: u64) -> ServeConfig {
        self.shard_tag = Some(shard);
        self
    }

    /// Sets the cross-shard temporal-drift audit bound.
    pub fn with_drift_bound(mut self, bound: f64) -> ServeConfig {
        self.drift_bound = bound;
        self
    }

    /// Sets an explicit coordination quorum (clamped to `1..=shards`).
    pub fn with_quorum(mut self, quorum: usize) -> ServeConfig {
        self.quorum = Some(quorum);
        self
    }

    /// Sets the per-shard tick budget of the fleet clock.
    pub fn with_shard_tick_budget(mut self, budget: Duration) -> ServeConfig {
        self.shard_tick_budget = budget;
        self
    }

    /// Sets how many consecutive clean ticks heal a Suspect shard.
    pub fn with_recovery_clean_ticks(mut self, ticks: u64) -> ServeConfig {
        self.recovery_clean_ticks = ticks.max(1);
        self
    }

    /// The quorum actually enforced: the configured one clamped to
    /// `1..=shards`, or the rounded-up majority by default.
    pub fn effective_quorum(&self) -> usize {
        let n = self.shards.max(1);
        self.quorum.unwrap_or_else(|| default_quorum(n)).clamp(1, n)
    }
}

/// One item riding the bus into the ticker: an admitted client request,
/// or a command from the replication stream (the ticker is the sole
/// engine mutator, so replicated records apply through the same queue).
pub(crate) enum Item {
    /// An admitted client request awaiting its reply.
    Client {
        /// The parsed request.
        request: Request,
        /// In-queue expiry, from the request's `deadline_ms`.
        deadline: Option<Instant>,
        /// Where the ticker sends the response.
        reply: mpsc::Sender<Value>,
    },
    /// A replication-stream command (standby apply path, promotions).
    Repl(ReplCommand),
}

/// Everything the ticker hands back when the server stops.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final market snapshot (text wire format), taken after the drain.
    pub snapshot: String,
    /// The accepted-event journal (empty if it overflowed).
    pub journal: Vec<MarketEvent>,
    /// Whether the journal overflowed its retention cap.
    pub journal_overflowed: bool,
    /// Server counters at shutdown.
    pub metrics: ServeMetricsSnapshot,
    /// Market counters at shutdown, as their stable JSON line.
    pub market_metrics_json: String,
    /// Per-shard reports, one per shard in shard order. With one shard
    /// this holds a single entry mirroring the legacy top-level fields.
    pub shards: Vec<ShardShutdown>,
}

/// One shard's share of a [`ShutdownReport`].
#[derive(Debug)]
pub struct ShardShutdown {
    /// The shard index.
    pub shard: usize,
    /// The shard's final market snapshot (text wire format).
    pub snapshot: String,
    /// The shard's accepted-event journal (empty if it overflowed).
    pub journal: Vec<MarketEvent>,
    /// Whether this shard's journal overflowed its retention cap.
    pub journal_overflowed: bool,
    /// The shard's server counters at shutdown.
    pub metrics: ServeMetricsSnapshot,
    /// The shard's market counters, as their stable JSON line.
    pub market_metrics_json: String,
}

pub(crate) struct Shared {
    pub(crate) bus: Bus<Item>,
    pub(crate) metrics: ServeMetrics,
    pub(crate) stop: AtomicBool,
    pub(crate) retired: Mutex<Option<ServiceCore>>,
    /// Replication state, when configured.
    pub(crate) repl: Option<Arc<ReplShared>>,
    /// Ticker-exported engine epoch, for the reader-thread `ping` path.
    pub(crate) epoch: AtomicU64,
    /// Ticker-exported WAL sequence (events applied), ditto.
    pub(crate) wal_seq: AtomicU64,
    /// Ticker-exported aggregate demand (per-resource sum of reported
    /// elasticities), refreshed after every epoch; the cross-shard
    /// coordinator's input.
    pub(crate) demand: Mutex<Vec<f64>>,
    /// Router-assessed shard health ([`ShardHealth`] as its `u64`
    /// repr), written only by the fleet-tick path and the supervisor.
    pub(crate) health: AtomicU64,
    /// Consecutive fleet ticks this shard failed to answer.
    pub(crate) missed_ticks: AtomicU64,
    /// Consecutive clean tick replies since the shard was last Suspect
    /// (healing progress toward Healthy).
    pub(crate) clean_ticks: AtomicU64,
    /// Supervisor → ticker: hand over the core for a WAL restart.
    pub(crate) restart: AtomicBool,
    /// Ticker → supervisor: the core was dropped; its WAL dir is free
    /// to recover from.
    pub(crate) released: AtomicBool,
}

/// A shard's health as the router acts on it: the stored assessment,
/// overridden to Down the instant the shard's own ticker reports itself
/// degraded (the shard knows before any tick can time out).
fn effective_health(shared: &Shared) -> ShardHealth {
    if shared.metrics.degraded.load(Ordering::SeqCst) == 1 {
        return ShardHealth::Down;
    }
    ShardHealth::from_u64(shared.health.load(Ordering::SeqCst))
}

/// Router state shared by the acceptor and every reader: the shards,
/// the placement ring, and the cross-shard coordinator.
pub(crate) struct Router {
    pub(crate) shards: Vec<Arc<Shared>>,
    pub(crate) ring: HashRing,
    pub(crate) stop: AtomicBool,
    pub(crate) open_connections: AtomicUsize,
    pub(crate) started: Instant,
    pub(crate) coord: Mutex<Coordinator>,
    /// Tickers respawned by the supervisor after an in-place shard
    /// recovery; joined at shutdown alongside the original set.
    pub(crate) respawned: Mutex<Vec<JoinHandle<()>>>,
}

impl Router {
    /// Whether the transport should wind down: an explicit stop, or
    /// every shard's ticker has retired its core.
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
            || self
                .shards
                .iter()
                .all(|shard| shard.stop.load(Ordering::SeqCst))
    }

    /// Transport-level counters (connection accounting, protocol
    /// errors) live on shard 0's metrics, which is also the whole
    /// server's metrics in the single-shard case.
    fn metrics(&self) -> &ServeMetrics {
        &self.shards[0].metrics
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shards.len())
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

/// A running ref-serve instance.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    repl_addr: Option<SocketAddr>,
    router: Arc<Router>,
    config: ServeConfig,
    acceptor: Option<JoinHandle<()>>,
    tickers: Vec<JoinHandle<()>>,
    coordinator: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    repl_threads: Vec<JoinHandle<()>>,
    repl_handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and ticker threads with a *fresh* market.
    ///
    /// # Errors
    ///
    /// Returns the bind error, an invalid [`MarketConfig`] as
    /// [`std::io::ErrorKind::InvalidInput`], or — when a WAL is
    /// configured and its directory already holds state — an
    /// `InvalidInput` error directing the caller to [`Server::recover`],
    /// so a fresh boot can never silently shadow recoverable history.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        for shard in 0..config.shards.max(1) {
            if let Some(wal_config) = shard_wal_config(&config, shard) {
                if wal::dir_has_state(&wal_config.dir)? {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!(
                            "wal directory {:?} already holds state; use Server::recover",
                            wal_config.dir
                        ),
                    ));
                }
            }
        }
        Server::launch(addr, config)
    }

    /// Binds `addr` and resumes the market persisted in the configured
    /// WAL directory: newest valid checkpoint restored, WAL tail
    /// replayed (a torn final record is truncated away), state
    /// bit-identical to an offline replay of the full history. An empty
    /// directory starts a fresh market, so recover-on-boot is always
    /// safe.
    ///
    /// # Errors
    ///
    /// Everything [`Server::start`] returns, plus recovery failures:
    /// interior WAL corruption, or a checkpoint from a different market
    /// configuration ([`std::io::ErrorKind::InvalidData`] /
    /// [`std::io::ErrorKind::InvalidInput`]).
    pub fn recover(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        if config.wal.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Server::recover needs a WAL (ServeConfig::with_wal)",
            ));
        }
        Server::launch(addr, config)
    }

    fn launch(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let invalid = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        if config.shards == 0 {
            return Err(invalid("a server needs at least one shard"));
        }
        if config.repl.is_some() && config.wal.is_none() {
            return Err(invalid(
                "replication requires a write-ahead log (ServeConfig::with_wal)",
            ));
        }
        if config.repl.is_some() && config.shards > 1 {
            return Err(invalid(
                "in-process replication composes per shard: run one replicated \
                 pair per shard (ServeConfig::with_shard_tag) instead of \
                 replicating a sharded router",
            ));
        }
        let n = config.shards;
        // A credit market meters each agent's delivered utility against
        // the equal share of its own shard's capacity. When the equal
        // split is inexact in floating point ((c / n) * n != c), the
        // per-shard entitlement baselines no longer sum to the advertised
        // cluster capacity, so cross-shard credit balances stop being
        // comparable — reject loudly instead of serving a subtly skewed
        // market.
        if n > 1 && config.market.mechanism.credit_weighted() {
            for (r, &c) in config.market.capacity.as_slice().iter().enumerate() {
                let split = c / n as f64;
                if split * n as f64 != c {
                    return Err(invalid(&format!(
                        "mechanism {} over {n} shards needs an exact capacity \
                         split: resource {r} capacity {c} does not divide \
                         evenly (pick a capacity divisible by the shard count)",
                        config.market.mechanism.label()
                    )));
                }
            }
        }

        // One core per shard. Each shard's market starts from the equal
        // capacity split (the coordinator reallots from there) and owns
        // its own WAL directory, so crash recovery and replay stay
        // strictly per shard.
        let mut cores = Vec::with_capacity(n);
        let mut scrub_errors = vec![0u64; n];
        for (shard, scrub_slot) in scrub_errors.iter_mut().enumerate() {
            let market = if n == 1 {
                config.market.clone()
            } else {
                shard_market_config(&config.market, n)
            };
            let core = match shard_wal_config(&config, shard) {
                Some(wal_config) => {
                    let core = ServiceCore::recover(
                        market,
                        config.journal_limit,
                        wal_config,
                        config.faults.clone(),
                    )?;
                    // Post-recovery scrub: recovery validates only the
                    // replay path, so verify every retained byte (old
                    // checkpoints included) and surface latent rot in
                    // the `wal_scrub_errors` counter rather than letting
                    // it wait silently for the next failover.
                    *scrub_slot = match core.wal().map(|wal| wal.scrub()) {
                        Some(Ok(report)) => report.errors.len() as u64,
                        Some(Err(_)) => 1,
                        None => 0,
                    };
                    core
                }
                None => ServiceCore::new(market, config.journal_limit)
                    .map_err(|e| invalid(&e.to_string()))?
                    .with_faults(config.faults.clone()),
            };
            cores.push(core);
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Bind the replication listener before any thread starts, so a
        // bad address fails the launch instead of a background thread.
        // Replication is single-shard (validated above): it attaches to
        // shard 0's core.
        let repl_setup = match &config.repl {
            Some(repl_config) => {
                let wal_dir = config.wal.as_ref().expect("checked above").dir.clone();
                let repl_listener = TcpListener::bind(&repl_config.listen)?;
                repl_listener.set_nonblocking(true)?;
                let repl_addr = repl_listener.local_addr()?;
                let repl = Arc::new(ReplShared::new(
                    repl_config.clone(),
                    wal_dir,
                    Arc::clone(&config.clock),
                    config.rng_seed,
                ));
                repl.set_self_addrs(addr.to_string(), repl_addr.to_string());
                cores[0].attach_repl(Arc::clone(&repl));
                Some((repl, repl_listener, repl_addr))
            }
            None => None,
        };

        let resources = config.market.capacity.num_resources();
        let shards: Vec<Arc<Shared>> = cores
            .iter()
            .enumerate()
            .map(|(shard, core)| {
                Arc::new(Shared {
                    bus: Bus::new(config.quotas),
                    metrics: ServeMetrics::new(),
                    stop: AtomicBool::new(false),
                    retired: Mutex::new(None),
                    repl: if shard == 0 {
                        repl_setup.as_ref().map(|(repl, _, _)| Arc::clone(repl))
                    } else {
                        None
                    },
                    epoch: AtomicU64::new(core.engine().epoch()),
                    wal_seq: AtomicU64::new(core.events_applied()),
                    demand: Mutex::new(vec![0.0; resources]),
                    health: AtomicU64::new(ShardHealth::Healthy as u64),
                    missed_ticks: AtomicU64::new(0),
                    clean_ticks: AtomicU64::new(0),
                    restart: AtomicBool::new(false),
                    released: AtomicBool::new(false),
                })
            })
            .collect();
        for (shared, errors) in shards.iter().zip(&scrub_errors) {
            if *errors > 0 {
                ServeMetrics::bump_by(&shared.metrics.wal_scrub_errors, *errors);
            }
        }
        let router = Arc::new(Router {
            ring: HashRing::new(n, config.ring_seed),
            stop: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            started: Instant::now(),
            coord: Mutex::new(Coordinator::new(
                config.market.capacity.as_slice().to_vec(),
                n,
                config.drift_bound,
            )),
            respawned: Mutex::new(Vec::new()),
            shards,
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let repl_handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        // In sharded mode the shard tickers run no clocks of their own:
        // the coordinator fans synchronized ticks to every shard, so
        // epochs advance in lockstep fleet-wide.
        let ticker_config = if n == 1 {
            config.clone()
        } else {
            config.clone().with_epoch_interval(None)
        };
        let tickers: Vec<JoinHandle<()>> = cores
            .into_iter()
            .enumerate()
            .map(|(shard, core)| {
                let shared = Arc::clone(&router.shards[shard]);
                let config = ticker_config.clone();
                let name = if n == 1 {
                    "ref-serve-ticker".to_string()
                } else {
                    format!("ref-serve-ticker-{shard}")
                };
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || ticker_loop(core, shard, &shared, &config))
                    .expect("spawn ticker")
            })
            .collect();
        let coordinator = if n > 1 && config.epoch_interval.is_some() {
            let router = Arc::clone(&router);
            let config = config.clone();
            Some(
                std::thread::Builder::new()
                    .name("ref-serve-coord".to_string())
                    .spawn(move || coordinator_loop(&router, &config))
                    .expect("spawn coordinator"),
            )
        } else {
            None
        };
        // Shard supervision is a fleet concern: on a single-shard server
        // a ticker panic degrades to read-only (unchanged semantics); on
        // a sharded one the supervisor restarts the shard in place.
        let supervisor = if n > 1 {
            let router = Arc::clone(&router);
            let config = config.clone();
            Some(
                std::thread::Builder::new()
                    .name("ref-serve-supervisor".to_string())
                    .spawn(move || supervisor_loop(&router, &config))
                    .expect("spawn supervisor"),
            )
        } else {
            None
        };
        let acceptor = {
            let router = Arc::clone(&router);
            let readers = Arc::clone(&readers);
            let config = config.clone();
            std::thread::Builder::new()
                .name("ref-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &router, &readers, &config))
                .expect("spawn acceptor")
        };

        let mut repl_addr = None;
        let mut repl_threads = Vec::new();
        if let Some((repl, repl_listener, bound)) = repl_setup {
            repl_addr = Some(bound);
            {
                let shared = Arc::clone(&router.shards[0]);
                let handlers = Arc::clone(&repl_handlers);
                repl_threads.push(
                    std::thread::Builder::new()
                        .name("ref-serve-repl-accept".to_string())
                        .spawn(move || repl_acceptor_loop(repl_listener, &shared, &handlers))
                        .expect("spawn repl acceptor"),
                );
            }
            if repl.config().standby_of.is_some() {
                let shared = Arc::clone(&router.shards[0]);
                repl_threads.push(
                    std::thread::Builder::new()
                        .name("ref-serve-standby".to_string())
                        .spawn(move || standby_loop(&shared))
                        .expect("spawn standby puller"),
                );
            }
        }

        Ok(Server {
            addr,
            repl_addr,
            router,
            config,
            acceptor: Some(acceptor),
            tickers,
            coordinator,
            supervisor,
            readers,
            repl_threads,
            repl_handlers,
        })
    }

    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound replication listener address, when replication is
    /// configured (point standbys here).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_addr
    }

    /// The node's current replication role (`Primary` for an
    /// unreplicated server).
    pub fn role(&self) -> Role {
        self.router.shards[0]
            .repl
            .as_ref()
            .map_or(Role::Primary, |repl| repl.role())
    }

    /// The node's current replication term (0 when unreplicated).
    pub fn term(&self) -> u64 {
        self.router.shards[0]
            .repl
            .as_ref()
            .map_or(0, |repl| repl.term())
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Point-in-time server counters. On a sharded server these are
    /// shard 0's counters, which also carry the transport-level counts
    /// (connections, protocol errors, reader panics) for the whole
    /// server; see [`Server::shard_metrics`] for the rest.
    pub fn metrics(&self) -> ServeMetricsSnapshot {
        self.router.metrics().snapshot()
    }

    /// Point-in-time counters of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn shard_metrics(&self, shard: usize) -> ServeMetricsSnapshot {
        self.router.shards[shard].metrics.snapshot()
    }

    /// Number of market shards this server runs.
    pub fn shards(&self) -> usize {
        self.router.shards.len()
    }

    /// The router's current health assessment of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards()`.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        effective_health(&self.router.shards[shard])
    }

    /// The shard that owns `agent` under the configured ring.
    pub fn shard_of(&self, agent: AgentId) -> usize {
        self.router.ring.shard_of(agent)
    }

    /// The cross-shard coordinator's status, when this server is
    /// sharded (`None` on a single-shard server, which needs no
    /// coordination).
    pub fn coordination(&self) -> Option<CoordinationStatus> {
        if self.router.shards.len() == 1 {
            return None;
        }
        Some(
            self.router
                .coord
                .lock()
                .expect("coord lock poisoned")
                .status(),
        )
    }

    /// Current bus depth (queued, un-drained requests), summed across
    /// shards.
    pub fn queue_depth(&self) -> usize {
        self.router.shards.iter().map(|s| s.bus.depth()).sum()
    }

    /// Gracefully stops the server: drains every admitted request, runs
    /// no further epochs, flushes a final snapshot, joins all threads.
    pub fn shutdown(self) -> ShutdownReport {
        // Closing the bus is the drain signal: unlike a synthetic
        // shutdown item, it cannot be bounced by a full control quota,
        // and it is a no-op if a wire shutdown already closed the bus.
        for shared in &self.router.shards {
            shared.bus.close();
        }
        self.collect()
    }

    /// Blocks until a wire `shutdown` request drains the server, then
    /// joins the transport threads and returns the report. Unlike
    /// [`Server::shutdown`], this does not stop the server itself.
    pub fn wait(mut self) -> ShutdownReport {
        for handle in std::mem::take(&mut self.tickers) {
            let _ = handle.join();
        }
        self.collect()
    }

    fn collect(mut self) -> ShutdownReport {
        self.join_threads();
        let shards: Vec<ShardShutdown> = self
            .router
            .shards
            .iter()
            .enumerate()
            .map(|(shard, shared)| {
                let core = shared.retired.lock().expect("retired lock poisoned").take();
                match core {
                    Some(core) => ShardShutdown {
                        shard,
                        snapshot: core.final_snapshot(),
                        journal: core.journal().to_vec(),
                        journal_overflowed: core.journal_overflowed(),
                        metrics: shared.metrics.snapshot(),
                        market_metrics_json: core.engine().metrics().to_json(),
                    },
                    // A shard caught mid-restart with no WAL to recover
                    // offline from: report what the transport knows
                    // rather than panic the whole shutdown.
                    None => ShardShutdown {
                        shard,
                        snapshot: String::new(),
                        journal: Vec::new(),
                        journal_overflowed: false,
                        metrics: shared.metrics.snapshot(),
                        market_metrics_json: "{}".to_string(),
                    },
                }
            })
            .collect();
        // The legacy top-level fields mirror shard 0, which for a
        // single-shard server (the default) is the whole story.
        let first = &shards[0];
        ShutdownReport {
            snapshot: first.snapshot.clone(),
            journal: first.journal.clone(),
            journal_overflowed: first.journal_overflowed,
            metrics: first.metrics.clone(),
            market_metrics_json: first.market_metrics_json.clone(),
            shards,
        }
    }

    fn join_threads(&mut self) {
        for handle in std::mem::take(&mut self.tickers) {
            let _ = handle.join();
        }
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        // The supervisor goes before the respawned tickers: once it is
        // joined, nothing else can add to the respawned set.
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        let respawned: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .router
                .respawned
                .lock()
                .expect("respawned lock poisoned"),
        );
        for handle in respawned {
            let _ = handle.join();
        }
        self.router.stop.store(true, Ordering::SeqCst);
        for shared in &self.router.shards {
            shared.stop.store(true, Ordering::SeqCst);
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.readers.lock().expect("readers lock poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        for handle in std::mem::take(&mut self.repl_threads) {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .repl_handlers
                .lock()
                .expect("repl handlers lock poisoned"),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.tickers.is_empty() || self.acceptor.is_some() {
            for shared in &self.router.shards {
                shared.bus.close();
            }
            self.join_threads();
        }
    }
}

/// The WAL configuration of one shard: the configured directory itself
/// for a single-shard server (bit-compatible with every pre-sharding
/// deployment), a `shard-<k>` subdirectory per shard otherwise.
fn shard_wal_config(config: &ServeConfig, shard: usize) -> Option<WalConfig> {
    let wal = config.wal.as_ref()?;
    if config.shards <= 1 {
        return Some(wal.clone());
    }
    let mut wal = wal.clone();
    wal.dir = wal.dir.join(format!("shard-{shard}"));
    Some(wal)
}

fn acceptor_loop(
    listener: TcpListener,
    router: &Arc<Router>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: &ServeConfig,
) {
    loop {
        if router.stopped() {
            return;
        }
        reap_finished_readers(readers);
        match listener.accept() {
            Ok((stream, _)) => {
                ServeMetrics::bump(&router.metrics().connections);
                if router.open_connections.load(Ordering::SeqCst) >= config.max_connections {
                    ServeMetrics::bump(&router.metrics().rejected_overload);
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        error_response(
                            "overloaded",
                            Some("connection limit reached"),
                            Some(config.retry_after_ms),
                        )
                    );
                    continue;
                }
                router.open_connections.fetch_add(1, Ordering::SeqCst);
                let router = Arc::clone(router);
                let config = config.clone();
                let handle = std::thread::Builder::new()
                    .name("ref-serve-conn".to_string())
                    .spawn(move || {
                        // The slot guard releases the connection count even
                        // if the reader panics, and the panic is contained
                        // here: a poisoned connection dies alone.
                        let _slot = ConnectionSlot(Arc::clone(&router));
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            reader_loop(stream, &router, &config);
                        }));
                        if outcome.is_err() {
                            ServeMetrics::bump(&router.metrics().reader_panics);
                        }
                    })
                    .expect("spawn reader");
                readers.lock().expect("readers lock poisoned").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Releases one open-connection slot when a reader thread exits — by
/// return *or* by panic — so a poisoned connection cannot leak its slot
/// and slowly strangle the accept limit.
struct ConnectionSlot(Arc<Router>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.open_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Joins and discards handles of reader threads that have already
/// exited, so the registry stays bounded by *open* connections rather
/// than growing with every connection ever accepted.
fn reap_finished_readers(readers: &Mutex<Vec<JoinHandle<()>>>) {
    let mut handles = readers.lock().expect("readers lock poisoned");
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            // Joining a finished thread returns immediately.
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn reader_loop(stream: TcpStream, router: &Arc<Router>, config: &ServeConfig) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` appends, so bytes delivered before a read timeout
        // stay in `line` and the next pass resumes the same line; `line`
        // is only cleared once a complete line has been processed.
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF; a final unterminated line is still one request.
                if !line.trim().is_empty() {
                    let response = dispatch(&line, router, config);
                    let _ = writeln!(writer, "{response}");
                    let _ = writer.flush();
                }
                return;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if router.stopped() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        let response = dispatch(&line, router, config);
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            return;
        }
        line.clear();
    }
}

/// Parses, admits, routes and awaits one request line; always produces a
/// response. On a single-shard server every request goes straight to
/// shard 0 and the wire behavior is exactly the classic server's. On a
/// sharded server, agent-scoped requests hash to their owning shard,
/// `tick` fans to every shard and runs the coordination step, and
/// inspection requests aggregate shard-tagged answers.
fn dispatch(line: &str, router: &Arc<Router>, config: &ServeConfig) -> Value {
    if config.faults.is_armed() {
        if let Some(token) = &config.faults.panic_on_line_token {
            if line.contains(token.as_str()) {
                panic!("injected reader panic on line containing {token:?}");
            }
        }
    }
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(detail) => {
            ServeMetrics::bump(&router.metrics().protocol_errors);
            return error_response("protocol", Some(&detail), None);
        }
    };
    if let Request::Ping { agent } = envelope.request {
        // Answered right here on the reader thread from ticker-exported
        // atomics: liveness probes must work even when the bus is full
        // or the ticker is busy — that is exactly when you probe.
        ServeMetrics::bump(&router.metrics().accepted);
        return ping_response(router, config, agent);
    }
    if router.shards.len() == 1 {
        return dispatch_to_shard(&router.shards[0], envelope, config);
    }
    match &envelope.request {
        Request::Join { agent, .. }
        | Request::Leave { agent }
        | Request::Demand { agent, .. }
        | Request::Observe { agent, .. }
        | Request::Query { agent: Some(agent) } => {
            let shard = router.ring.shard_of(*agent);
            let shared = &router.shards[shard];
            // Fail fast instead of queueing behind a dead ticker and
            // burning the full reply timeout: the owning shard is Down,
            // so tell the client when to come back.
            if effective_health(shared) == ShardHealth::Down {
                return shard_unavailable_response(shard as u64, config.retry_after_ms);
            }
            dispatch_to_shard(shared, envelope, config)
        }
        // The coordinator owns capacity splits on a sharded server; an
        // out-of-band reallot would silently fight it.
        Request::Reallot { .. } => {
            ServeMetrics::bump(&router.metrics().protocol_errors);
            error_response(
                "protocol",
                Some("reallot is coordinator-managed on a sharded server"),
                None,
            )
        }
        Request::Tick => fan_tick(router, envelope.deadline_ms, config),
        Request::Query { agent: None }
        | Request::Snapshot
        | Request::Journal
        | Request::Metrics { .. }
        | Request::Scrub
        | Request::Promote
        | Request::Shutdown => {
            let wait = envelope
                .deadline_ms
                .map(|ms| Duration::from_millis(ms) + config.reply_timeout)
                .unwrap_or(config.reply_timeout);
            let replies = fan(
                router,
                &envelope.request,
                envelope.deadline_ms,
                wait,
                config,
            );
            merge_fanned(&envelope.request, replies)
        }
        Request::Ping { .. } => unreachable!("ping answered above"),
    }
}

/// Admits one request onto a single shard's bus and awaits the reply.
fn dispatch_to_shard(shared: &Arc<Shared>, envelope: Envelope, config: &ServeConfig) -> Value {
    let class = envelope.request.class();
    let deadline = envelope
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let (tx, rx) = mpsc::channel();
    let item = Item::Client {
        request: envelope.request,
        deadline,
        reply: tx,
    };
    match shared.bus.try_send(class, item) {
        Ok(()) => {
            ServeMetrics::bump(&shared.metrics.accepted);
            let wait = envelope
                .deadline_ms
                .map(|ms| Duration::from_millis(ms) + config.reply_timeout)
                .unwrap_or(config.reply_timeout);
            match rx.recv_timeout(wait) {
                Ok(response) => response,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    error_response("timeout", Some("no reply from the epoch loop"), None)
                }
                // The ticker dropped the reply sender without answering —
                // it panicked mid-batch. The supervisor restarts it in
                // degraded mode; this request is the one casualty.
                Err(mpsc::RecvTimeoutError::Disconnected) => error_response(
                    "internal",
                    Some("request dropped by a ticker failure"),
                    None,
                ),
            }
        }
        Err(SendError::Full(_)) => {
            ServeMetrics::bump(&shared.metrics.rejected_overload);
            let depth = shared.bus.depth();
            shared
                .metrics
                .queue_depth
                .store(depth as u64, Ordering::SeqCst);
            error_response(
                "overloaded",
                None,
                Some(retry_hint(config.retry_after_ms, depth, config.quotas)),
            )
        }
        Err(SendError::Closed) => {
            ServeMetrics::bump(&shared.metrics.rejected_shutdown);
            error_response("shutting_down", None, None)
        }
    }
}

/// Scales the configured retry hint by how deep the rejecting shard's
/// bus is relative to its total quota, capped at one second: a shard
/// that is barely over quota asks clients back soon, a drowning one
/// sheds them for longer.
fn retry_hint(base_ms: u64, depth: usize, quotas: Quotas) -> u64 {
    let base = base_ms.max(1);
    let quota = (quotas
        .control
        .saturating_add(quotas.observe)
        .saturating_add(quotas.query))
    .max(1) as u64;
    base.saturating_add(base.saturating_mul(depth as u64) / quota)
        .min(1000)
}

/// One shard's slot in a fan-out wave: a reply channel to await, or an
/// answer already known without asking the shard.
enum Fanned {
    /// The request was admitted; await the ticker's reply here.
    Rx(Mutex<mpsc::Receiver<Value>>),
    /// The shard was not asked (Down, or its bus closed); this is its
    /// placeholder reply.
    Ready(Value),
}

/// Fans one request to every shard's bus (quota-exempt: fleet-wide
/// control must not be bounced by one shard's backpressure) and collects
/// the replies within `wait` in parallel over `ref-pool`. A Down shard
/// is answered with `shard_unavailable` instead of queueing behind a
/// dead ticker — except for `shutdown`/`promote`, which must reach every
/// shard's bus — and a shard that is already shut down answers with a
/// placeholder error instead of stalling the fan-out.
fn fan(
    router: &Arc<Router>,
    request: &Request,
    deadline_ms: Option<u64>,
    wait: Duration,
    config: &ServeConfig,
) -> Vec<Value> {
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    // Shutdown must close every bus and promote must reach every
    // ticker, even a wedged one — its queue drains on recovery.
    let skip_down = !matches!(request, Request::Shutdown | Request::Promote);
    // Fan in waves no wider than the worker pool: admitting every shard
    // at once makes more tickers runnable than the host has cores, and
    // the preempt-interleaved epochs evict each other's caches — on a
    // single-core host that alone costs ~20% of the audit throughput.
    // Waves keep at most `threads()` epochs in flight, which is also the
    // most that can genuinely run in parallel.
    let shards = router.shards.len();
    let width = ref_pool::threads().clamp(1, shards);
    let mut replies = Vec::with_capacity(shards);
    for wave_start in (0..shards).step_by(width) {
        let wave: Vec<Fanned> = router.shards[wave_start..(wave_start + width).min(shards)]
            .iter()
            .enumerate()
            .map(|(i, shared)| {
                let shard = wave_start + i;
                if skip_down && effective_health(shared) == ShardHealth::Down {
                    return Fanned::Ready(shard_unavailable_response(
                        shard as u64,
                        config.retry_after_ms,
                    ));
                }
                let (tx, rx) = mpsc::channel();
                let item = Item::Client {
                    request: request.clone(),
                    deadline,
                    reply: tx,
                };
                match shared.bus.push(request.class(), item) {
                    Ok(()) => {
                        ServeMetrics::bump(&shared.metrics.accepted);
                        Fanned::Rx(Mutex::new(rx))
                    }
                    Err(_) => {
                        ServeMetrics::bump(&shared.metrics.rejected_shutdown);
                        Fanned::Ready(error_response("shutting_down", None, None))
                    }
                }
            })
            .collect();
        replies.extend(ref_pool::par_map(wave.len(), |i| match &wave[i] {
            Fanned::Rx(rx) => match rx
                .lock()
                .expect("receiver lock poisoned")
                .recv_timeout(wait)
            {
                Ok(response) => response,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    error_response("timeout", Some("no reply from the epoch loop"), None)
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => error_response(
                    "internal",
                    Some("request dropped by a ticker failure"),
                    None,
                ),
            },
            Fanned::Ready(value) => value.clone(),
        }));
    }
    replies
}

/// Inserts a `"shard": k` tag right after the leading `ok`/`error`
/// marker of a shard's reply, so aggregated arrays stay attributable.
fn tag_shard(value: Value, shard: usize) -> Value {
    match value {
        Value::Obj(mut pairs) => {
            let at = pairs.len().min(1);
            pairs.insert(at, ("shard".to_string(), Value::from_u64(shard as u64)));
            Value::Obj(pairs)
        }
        other => other,
    }
}

/// Merges fanned non-tick replies into one response: per-shard answers
/// ride in a shard-tagged `shards` array, and the handful of scalar
/// fields clients key on (`epoch`, `agents`) are combined.
fn merge_fanned(request: &Request, replies: Vec<Value>) -> Value {
    if let Request::Metrics { text: true } = request {
        // The text form concatenates per-shard exports with each series
        // labeled by shard, which is what a scraper wants to ingest.
        let mut out = String::new();
        for (shard, reply) in replies.iter().enumerate() {
            if let Some(text) = reply.get("text").and_then(Value::as_str) {
                for line in text.lines() {
                    match line.split_once(' ') {
                        Some((name, rest)) => {
                            out.push_str(&format!("{name}{{shard=\"{shard}\"}} {rest}\n"));
                        }
                        None => {
                            out.push_str(line);
                            out.push('\n');
                        }
                    }
                }
            }
        }
        return ok_response(vec![("text", Value::str(out))]);
    }
    let mut fields: Vec<(&str, Value)> = Vec::new();
    if let Request::Scrub = request {
        // A fleet is clean only when every shard's log scrubbed clean.
        let clean = replies
            .iter()
            .all(|r| r.get("clean") == Some(&Value::Bool(true)));
        fields.push(("clean", Value::Bool(clean)));
    }
    if let Request::Query { agent: None } = request {
        let epoch = replies
            .iter()
            .filter_map(|r| r.get("epoch").and_then(Value::as_u64))
            .max()
            .unwrap_or(0);
        // Live-agent id lists concatenate across shards, sorted so the
        // merged view is stable regardless of shard reply order.
        let mut agents: Vec<u64> = replies
            .iter()
            .filter_map(|r| r.get("agents").and_then(Value::as_array))
            .flatten()
            .filter_map(Value::as_u64)
            .collect();
        agents.sort_unstable();
        fields.push(("epoch", Value::from_u64(epoch)));
        fields.push((
            "agents",
            Value::Arr(agents.into_iter().map(Value::from_u64).collect()),
        ));
    }
    let tagged: Vec<Value> = replies
        .into_iter()
        .enumerate()
        .map(|(shard, reply)| tag_shard(reply, shard))
        .collect();
    fields.push(("shards", Value::Arr(tagged)));
    ok_response(fields)
}

/// Fans an epoch tick to every shard, merges the per-shard reports into
/// one combined report, then runs the cross-shard coordination step on
/// the fresh demand summaries. The merged reply carries the combined
/// report plus the coordinator's drift audit.
///
/// This is also where shard health is assessed: each shard's tick reply
/// (or its absence within the per-shard tick budget) drives the
/// `Healthy → Suspect → Down` transitions, and the coordination step is
/// quorum-gated — below quorum the allotments freeze and the merged
/// report is marked `partial` with the missing shard ids.
fn fan_tick(router: &Arc<Router>, deadline_ms: Option<u64>, config: &ServeConfig) -> Value {
    // The tick budget caps how long any one shard may hold up the fleet
    // clock; a client deadline can only tighten it further.
    let wait = deadline_ms
        .map(|ms| Duration::from_millis(ms) + config.reply_timeout)
        .unwrap_or(config.reply_timeout)
        .min(config.shard_tick_budget);
    let replies = fan(router, &Request::Tick, deadline_ms, wait, config);
    let mut delivered = vec![false; replies.len()];
    for (shard, reply) in replies.iter().enumerate() {
        let shared = &router.shards[shard];
        if reply.get("ok") == Some(&Value::Bool(true)) {
            delivered[shard] = true;
            shared.missed_ticks.store(0, Ordering::SeqCst);
            if ShardHealth::from_u64(shared.health.load(Ordering::SeqCst)) != ShardHealth::Healthy {
                let clean = shared.clean_ticks.fetch_add(1, Ordering::SeqCst) + 1;
                if clean >= config.recovery_clean_ticks {
                    shared
                        .health
                        .store(ShardHealth::Healthy as u64, Ordering::SeqCst);
                    shared.clean_ticks.store(0, Ordering::SeqCst);
                }
            }
        } else {
            match reply.get("error").and_then(Value::as_str) {
                // A missed tick budget: Suspect on the first, Down on
                // repeat offenses.
                Some("timeout") => {
                    shared.clean_ticks.store(0, Ordering::SeqCst);
                    let missed = shared.missed_ticks.fetch_add(1, Ordering::SeqCst) + 1;
                    let next = if missed >= 2 {
                        ShardHealth::Down
                    } else {
                        ShardHealth::Suspect
                    };
                    shared.health.store(next as u64, Ordering::SeqCst);
                }
                // The ticker dropped the reply or refused the mutation:
                // the shard itself failed, no grace period.
                Some("internal") | Some("degraded") => {
                    shared.clean_ticks.store(0, Ordering::SeqCst);
                    shared
                        .health
                        .store(ShardHealth::Down as u64, Ordering::SeqCst);
                }
                // `shard_unavailable` (already Down, not asked) and
                // `shutting_down` carry no new health signal.
                _ => {}
            }
        }
    }
    let down = router
        .shards
        .iter()
        .filter(|s| effective_health(s) == ShardHealth::Down)
        .count();
    router
        .metrics()
        .shards_down
        .store(down as u64, Ordering::SeqCst);

    let reported = delivered.iter().filter(|d| **d).count();
    let status = if reported >= config.effective_quorum() {
        coordinate(router, &delivered)
    } else {
        // Below quorum the demand picture is too partial to act on:
        // freeze allotments rather than chase phantom imbalance.
        ServeMetrics::bump(&router.metrics().quorum_freezes);
        router.coord.lock().expect("coord lock poisoned").status()
    };
    let missing: Vec<u64> = delivered
        .iter()
        .enumerate()
        .filter(|(_, d)| !**d)
        .map(|(shard, _)| shard as u64)
        .collect();
    if !missing.is_empty() {
        ServeMetrics::bump(&router.metrics().partial_epochs);
    }
    let epoch = replies
        .iter()
        .filter_map(|r| r.get("epoch").and_then(Value::as_u64))
        .max()
        .unwrap_or(0);
    let mut fields: Vec<(&str, Value)> = vec![("epoch", Value::from_u64(epoch))];
    if let Some(report) = merge_reports(&replies, &missing) {
        fields.push(("report", report));
    }
    fields.push(("drift", Value::Num(status.drift)));
    fields.push(("drift_bound_ok", Value::Bool(status.within_bound)));
    let tagged: Vec<Value> = replies
        .into_iter()
        .enumerate()
        .map(|(shard, reply)| tag_shard(reply, shard))
        .collect();
    fields.push(("shards", Value::Arr(tagged)));
    ok_response(fields)
}

/// Exchanges per-shard aggregate demand and pushes the coordinator's
/// capacity reallotments onto the shards that need them. Reallotments
/// are journaled control events on each shard's own bus, so they land
/// before the next epoch and replay bit-identically. A shard that did
/// not answer this tick (`delivered[shard] == false`) gets nothing
/// pushed — the coordinator remembers the allotment as undelivered and
/// re-offers it once the shard reports again.
fn coordinate(router: &Arc<Router>, delivered: &[bool]) -> CoordinationStatus {
    let demands: Vec<Vec<f64>> = router
        .shards
        .iter()
        .map(|shared| shared.demand.lock().expect("demand lock poisoned").clone())
        .collect();
    let mut coord = router.coord.lock().expect("coord lock poisoned");
    let mut updates = coord.step(&demands);
    for (shard, update) in updates.iter_mut().enumerate() {
        if update.is_some() && !delivered.get(shard).copied().unwrap_or(false) {
            coord.mark_undelivered(shard);
            *update = None;
        }
    }
    let status = coord.status();
    drop(coord);
    for (shard, update) in updates.into_iter().enumerate() {
        if let Some(capacity) = update {
            let request = Request::Reallot { capacity };
            let (tx, _rx) = mpsc::channel();
            let item = Item::Client {
                request: request.clone(),
                deadline: None,
                reply: tx,
            };
            // Fire and forget: the ticker applies it before the next
            // epoch (the bus is FIFO) and journals it like any other
            // control event. `_rx` is dropped; the ticker's reply send
            // fails harmlessly.
            let _ = router.shards[shard].bus.push(request.class(), item);
        }
    }
    status
}

/// Combines per-shard epoch reports into a fleet-wide view: agent counts
/// sum, warm-up ORs, fairness flags AND (with violation counts summed
/// and the worst ratios kept), and the enforcement deviation takes the
/// worst shard. `None` if no shard produced a report this tick. When
/// any shard missed the tick (`missing` non-empty) the merged report is
/// stamped `partial: true` with those shard ids and carries no fairness
/// block: a fleet audit over a partial fleet would be phantom data.
fn merge_reports(replies: &[Value], missing: &[u64]) -> Option<Value> {
    let reports: Vec<&Value> = replies.iter().filter_map(|r| r.get("report")).collect();
    if reports.is_empty() {
        return None;
    }
    let u = |key: &str| -> u64 {
        reports
            .iter()
            .filter_map(|r| r.get(key).and_then(Value::as_u64))
            .sum()
    };
    let epoch = reports
        .iter()
        .filter_map(|r| r.get("epoch").and_then(Value::as_u64))
        .max()
        .unwrap_or(0);
    let warm = reports
        .iter()
        .any(|r| r.get("warm").and_then(Value::as_bool) == Some(true));
    let worst_dev = reports
        .iter()
        .filter_map(|r| r.get("worst_enforcement_deviation").and_then(Value::as_f64))
        .fold(0.0f64, f64::max);
    let mut fields: Vec<(&str, Value)> = vec![
        ("epoch", Value::from_u64(epoch)),
        ("agents", Value::from_u64(u("agents"))),
        ("warm", Value::Bool(warm)),
        ("worst_enforcement_deviation", Value::Num(worst_dev)),
    ];
    if !missing.is_empty() {
        fields.push(("partial", Value::Bool(true)));
        fields.push((
            "missing_shards",
            Value::Arr(missing.iter().copied().map(Value::from_u64).collect()),
        ));
    }
    // Fairness merges only when every shard audited this epoch: a
    // partially-audited fleet must not claim fleet-wide fairness.
    let fairness: Vec<&Value> = reports.iter().filter_map(|r| r.get("fairness")).collect();
    if missing.is_empty() && fairness.len() == reports.len() {
        let all = |key: &str| {
            fairness
                .iter()
                .all(|f| f.get(key).and_then(Value::as_bool) == Some(true))
        };
        let count = |key: &str| -> u64 {
            fairness
                .iter()
                .filter_map(|f| f.get(key).and_then(Value::as_u64))
                .sum()
        };
        let worst = |key: &str| -> f64 {
            fairness
                .iter()
                .filter_map(|f| f.get(key).and_then(Value::as_f64))
                .fold(0.0f64, f64::max)
        };
        // Per-shard reports emit `envy_edges` (violation count) and
        // `max_mrs_mismatch`; the merged view renames them to the
        // fleet-wide reading: total violations, worst spread anywhere.
        fields.push((
            "fairness",
            Value::obj(vec![
                ("sharing_incentives", Value::Bool(all("sharing_incentives"))),
                ("si_violations", Value::from_u64(count("si_violations"))),
                ("envy_free", Value::Bool(all("envy_free"))),
                ("ef_violations", Value::from_u64(count("envy_edges"))),
                ("pareto_efficient", Value::Bool(all("pareto_efficient"))),
                ("max_mrs_spread", Value::Num(worst("max_mrs_mismatch"))),
            ]),
        ));
    }
    Some(Value::obj(fields))
}

/// The timed-epoch clock of a sharded server: the shard tickers run no
/// timers of their own, so this loop fans synchronized ticks (and the
/// coordination step after each) at the configured cadence.
fn coordinator_loop(router: &Arc<Router>, config: &ServeConfig) {
    let interval = config
        .epoch_interval
        .expect("coordinator requires timed epochs");
    let mut next = config.clock.now() + interval;
    loop {
        if router.stopped() || router.shards.iter().any(|s| s.bus.is_closed()) {
            return;
        }
        let now = config.clock.now();
        if now < next {
            // Short sleeps keep shutdown latency bounded (and re-read a
            // virtual clock promptly).
            std::thread::sleep((next - now).min(Duration::from_millis(20)));
            continue;
        }
        let _ = fan_tick(router, None, config);
        next = config.clock.now() + interval;
    }
}

/// The shard supervisor of a sharded server: sweeps the fleet, restarts
/// degraded shards in place from their own WAL, and probes shards the
/// router marked Down on timeouts alone (a Down shard is skipped by the
/// fan, so without a probe it could never produce the clean replies
/// that heal it).
fn supervisor_loop(router: &Arc<Router>, config: &ServeConfig) {
    // Respawned tickers run no clocks of their own, like every sharded
    // ticker: the coordinator remains the fleet's only clock.
    let ticker_config = config.clone().with_epoch_interval(None);
    loop {
        if router.stopped() || router.shards.iter().any(|s| s.bus.is_closed()) {
            break;
        }
        for (shard, shared) in router.shards.iter().enumerate() {
            if shared.stop.load(Ordering::SeqCst) {
                continue;
            }
            if shared.metrics.degraded.load(Ordering::SeqCst) == 1 {
                // Without a WAL there is nothing to recover from: the
                // shard stays degraded and read-only, as always.
                if shard_wal_config(config, shard).is_some() {
                    try_restart(router, shard, &ticker_config, config);
                }
            } else if ShardHealth::from_u64(shared.health.load(Ordering::SeqCst))
                == ShardHealth::Down
            {
                probe_shard(router, shard);
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    // Shutdown caught a restart mid-handshake: the old ticker released
    // the core and no new ticker owns it yet. Recover offline so the
    // shutdown report still carries the shard's durable state.
    for (shard, shared) in router.shards.iter().enumerate() {
        let released = shared.released.load(Ordering::SeqCst);
        if !released
            || shared
                .retired
                .lock()
                .expect("retired lock poisoned")
                .is_some()
        {
            continue;
        }
        if let Some(wal_config) = shard_wal_config(config, shard) {
            let market = shard_market_config(&config.market, config.shards);
            if let Ok(core) =
                ServiceCore::recover(market, config.journal_limit, wal_config, FaultPlan::none())
            {
                *shared.retired.lock().expect("retired lock poisoned") = Some(core);
                shared.stop.store(true, Ordering::SeqCst);
            }
        }
    }
}

/// Restarts one degraded shard in place: handshake the wedged ticker
/// out of its core, re-run WAL recovery from the shard's own directory,
/// resynchronize the recovered core with the fleet (the coordinator's
/// current allotment covers every `reallot` it missed; quota-exempt
/// ticks catch its epoch up), and spawn a fresh ticker around it. Any
/// failure leaves the flags set for the next sweep to retry.
fn try_restart(
    router: &Arc<Router>,
    shard: usize,
    ticker_config: &ServeConfig,
    config: &ServeConfig,
) {
    let shared = &router.shards[shard];
    if !shared.released.load(Ordering::SeqCst) {
        shared.restart.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(2);
        while !shared.released.load(Ordering::SeqCst) {
            if Instant::now() > deadline || shared.bus.is_closed() || router.stopped() {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let wal_config = shard_wal_config(config, shard).expect("caller checked the WAL");
    let market = shard_market_config(&config.market, config.shards);
    // The recovered core runs with a disarmed fault plan: every armed
    // fault already fired (that is why we are here), and re-arming
    // append/sync faults against the replayed sequence numbers would
    // re-break the shard on its first post-recovery event.
    let core =
        match ServiceCore::recover(market, config.journal_limit, wal_config, FaultPlan::none()) {
            Ok(core) => core,
            Err(_) => {
                ServeMetrics::bump(&shared.metrics.wal_errors);
                return;
            }
        };
    // Resynchronize before the ticker starts: the re-offered allotment
    // lands on the bus ahead of any client traffic that arrives once
    // the degraded gate clears, and the catch-up ticks bring the shard
    // to the fleet epoch (the bus is FIFO).
    {
        let capacity = router
            .coord
            .lock()
            .expect("coord lock poisoned")
            .resync_delivery(shard);
        let request = Request::Reallot { capacity };
        let (tx, _rx) = mpsc::channel();
        let _ = shared.bus.push(
            request.class(),
            Item::Client {
                request,
                deadline: None,
                reply: tx,
            },
        );
    }
    let fleet_epoch = router
        .shards
        .iter()
        .enumerate()
        .filter(|(k, _)| *k != shard)
        .map(|(_, s)| s.epoch.load(Ordering::SeqCst))
        .max()
        .unwrap_or(0);
    for _ in 0..fleet_epoch.saturating_sub(core.engine().epoch()) {
        let (tx, _rx) = mpsc::channel();
        let _ = shared.bus.push(
            Request::Tick.class(),
            Item::Client {
                request: Request::Tick,
                deadline: None,
                reply: tx,
            },
        );
    }
    shared.released.store(false, Ordering::SeqCst);
    shared.restart.store(false, Ordering::SeqCst);
    shared.metrics.degraded.store(0, Ordering::SeqCst);
    shared
        .health
        .store(ShardHealth::Suspect as u64, Ordering::SeqCst);
    shared.missed_ticks.store(0, Ordering::SeqCst);
    shared.clean_ticks.store(0, Ordering::SeqCst);
    ServeMetrics::bump(&router.metrics().shard_restarts);
    let handle = std::thread::Builder::new()
        .name(format!("ref-serve-ticker-{shard}"))
        .spawn({
            let shared = Arc::clone(shared);
            let config = ticker_config.clone();
            move || ticker_loop(core, shard, &shared, &config)
        })
        .expect("spawn restarted ticker");
    router
        .respawned
        .lock()
        .expect("respawned lock poisoned")
        .push(handle);
}

/// Probes a shard the router marked Down on tick timeouts alone: its
/// ticker may simply have been slow, not dead. A quick query answered
/// in time demotes it to Suspect (the fan includes Suspect shards, so
/// clean ticks can finish the healing) after quota-exempt catch-up
/// ticks close the epoch gap it accumulated while skipped.
fn probe_shard(router: &Arc<Router>, shard: usize) {
    let shared = &router.shards[shard];
    let (tx, rx) = mpsc::channel();
    let request = Request::Query { agent: None };
    if shared
        .bus
        .push(
            request.class(),
            Item::Client {
                request,
                deadline: None,
                reply: tx,
            },
        )
        .is_err()
    {
        return;
    }
    match rx.recv_timeout(Duration::from_millis(100)) {
        Ok(reply) if reply.get("ok") == Some(&Value::Bool(true)) => {
            let fleet_epoch = router
                .shards
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != shard)
                .map(|(_, s)| s.epoch.load(Ordering::SeqCst))
                .max()
                .unwrap_or(0);
            for _ in 0..fleet_epoch.saturating_sub(shared.epoch.load(Ordering::SeqCst)) {
                let (tx, _rx) = mpsc::channel();
                let _ = shared.bus.push(
                    Request::Tick.class(),
                    Item::Client {
                        request: Request::Tick,
                        deadline: None,
                        reply: tx,
                    },
                );
            }
            shared
                .health
                .store(ShardHealth::Suspect as u64, Ordering::SeqCst);
            shared.missed_ticks.store(0, Ordering::SeqCst);
            shared.clean_ticks.store(0, Ordering::SeqCst);
        }
        _ => {}
    }
}

/// Answers a `ping` from transport-visible state alone (no engine
/// access): role, term, progress, uptime, and shard placement.
fn ping_response(router: &Arc<Router>, config: &ServeConfig, agent: Option<AgentId>) -> Value {
    let first = &router.shards[0];
    let mut fields = Vec::new();
    match first.repl.as_ref() {
        Some(repl) => {
            fields.push(("role", Value::str(repl.role().as_str())));
            fields.push(("term", Value::from_u64(repl.term())));
            if let Some(leader) = repl.leader_client() {
                fields.push(("leader", Value::str(leader)));
            }
            fields.push(("standbys", Value::from_u64(repl.standby_count())));
        }
        None => {
            fields.push(("role", Value::str("primary")));
            fields.push(("term", Value::from_u64(0)));
        }
    }
    fields.push((
        "epoch",
        Value::from_u64(
            router
                .shards
                .iter()
                .map(|s| s.epoch.load(Ordering::SeqCst))
                .max()
                .unwrap_or(0),
        ),
    ));
    fields.push((
        "wal_seq",
        Value::from_u64(first.wal_seq.load(Ordering::SeqCst)),
    ));
    fields.push((
        "uptime_ms",
        Value::from_u64(
            router
                .started
                .elapsed()
                .as_millis()
                .min(u128::from(u64::MAX)) as u64,
        ),
    ));
    fields.push(("shards", Value::from_u64(router.shards.len() as u64)));
    fields.push((
        "wal_seqs",
        Value::Arr(
            router
                .shards
                .iter()
                .map(|s| Value::from_u64(s.wal_seq.load(Ordering::SeqCst)))
                .collect(),
        ),
    ));
    // Per-shard health only appears on an actually sharded server, so
    // single-shard ping replies stay byte-identical.
    if router.shards.len() > 1 {
        fields.push((
            "shard_health",
            Value::Arr(
                router
                    .shards
                    .iter()
                    .map(|s| Value::str(effective_health(s).as_str()))
                    .collect(),
            ),
        ));
    }
    if let Some(agent) = agent {
        fields.push((
            "shard_of",
            Value::from_u64(router.ring.shard_of(agent) as u64),
        ));
    }
    if let Some(tag) = config.shard_tag {
        fields.push(("shard_tag", Value::from_u64(tag)));
    }
    ok_response(fields)
}

/// Mutable ticker state kept *outside* the supervised pass, so a caught
/// panic loses at most the request being handled: drain progress and
/// pending shutdown replies survive into the next pass.
struct TickerState {
    /// Clock reading ([`Clock::now`]) at which the next timed epoch is
    /// due. A `Duration` since the clock's origin rather than an
    /// `Instant`, so the deterministic simulator can drive the schedule.
    next_tick: Option<Duration>,
    /// Next heartbeat due on the replication stream (primaries only).
    next_hb: Option<Duration>,
    shutdown_replies: Vec<mpsc::Sender<Value>>,
    draining: bool,
    degraded: bool,
}

fn ticker_loop(core: ServiceCore, shard: usize, shared: &Arc<Shared>, config: &ServeConfig) {
    // Held in an Option so the retiring pass can move the core into the
    // shared slot; `Some` until the pass that returns `true`.
    let mut core = Some(core);
    let mut state = TickerState {
        next_tick: config.epoch_interval.map(|i| config.clock.now() + i),
        // A replicated node that boots as the primary heartbeats from
        // the first pass; a standby starts heartbeating on promotion.
        next_hb: config
            .repl
            .as_ref()
            .filter(|r| r.standby_of.is_none())
            .map(|_| config.clock.now()),
        shutdown_replies: Vec::new(),
        draining: false,
        degraded: false,
    };
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            ticker_pass(&mut core, shard, &mut state, shared, config)
        }));
        match outcome {
            Ok(true) => return,
            Ok(false) => {}
            Err(_) => {
                // Fail fast into degraded mode. The engine may have
                // missed an event the WAL already holds, so mutations
                // are refused from here on — the durable log, not this
                // process, is the source of truth — but reads keep
                // serving the pre-panic state and shutdown still drains.
                ServeMetrics::bump(&shared.metrics.ticker_panics);
                shared.metrics.degraded.store(1, Ordering::Relaxed);
                state.degraded = true;
            }
        }
    }
}

/// One supervised pass of the ticker: park, drain, serve, maybe run a
/// timed epoch. Returns `true` once the core is retired (exit signal).
fn ticker_pass(
    slot: &mut Option<ServiceCore>,
    shard: usize,
    state: &mut TickerState,
    shared: &Arc<Shared>,
    config: &ServeConfig,
) -> bool {
    // Supervisor handover: a degraded ticker drops its core — releasing
    // the WAL file handles so recovery can reopen the directory — and
    // exits; the supervisor spawns a fresh ticker around the recovered
    // core. Shutdown (a closed bus or an in-progress drain) wins over a
    // restart: the normal retirement path below runs instead.
    if state.degraded
        && !state.draining
        && !shared.bus.is_closed()
        && shared.restart.load(Ordering::SeqCst)
    {
        let _ = slot.take();
        shared.released.store(true, Ordering::SeqCst);
        return true;
    }
    let core = slot.as_mut().expect("core retired but ticker re-entered");
    if !state.draining {
        let now = config.clock.now();
        let mut park = match state.next_tick {
            Some(at) => at.saturating_sub(now),
            None => Duration::from_millis(50),
        };
        if let Some(at) = state.next_hb {
            park = park.min(at.saturating_sub(now));
        }
        if !park.is_zero() {
            // The park itself is a real (blocking) wait even under a
            // virtual clock; it is interrupted by any bus push, and the
            // due checks below re-read the configured clock.
            shared.bus.wait(park);
        }
    }

    let batch = shared.bus.drain();
    shared.metrics.observe_depth(batch.len() as u64);
    shared
        .metrics
        .queue_depth
        .store(batch.len() as u64, Ordering::Relaxed);
    for (_, item) in batch {
        let (request, deadline, reply) = match item {
            Item::Client {
                request,
                deadline,
                reply,
            } => (request, deadline, reply),
            Item::Repl(command) => {
                handle_repl_command(core, command, state, shared, config);
                continue;
            }
        };
        if let Some(deadline) = deadline {
            if Instant::now() > deadline {
                ServeMetrics::bump(&shared.metrics.rejected_deadline);
                let _ = reply.send(error_response(
                    "deadline",
                    Some("expired while queued"),
                    None,
                ));
                continue;
            }
        }
        if matches!(request, Request::Shutdown) {
            if !state.draining {
                state.draining = true;
                // Stop admitting; everything already on the bus is
                // still served below.
                shared.bus.close();
            }
            state.shutdown_replies.push(reply);
            continue;
        }
        if matches!(request, Request::Promote) {
            let _ = reply.send(handle_promote(state, shared, config));
            continue;
        }
        if request.to_event().is_some() {
            // Role gate: only a primary mutates. Standbys redirect the
            // client to the leader; a fenced node refuses outright.
            if let Some(repl) = shared.repl.as_ref() {
                match repl.role() {
                    Role::Primary => {}
                    Role::Standby => {
                        let leader = repl.leader_client();
                        let _ =
                            reply.send(not_primary_response(leader.as_deref(), config.shard_tag));
                        continue;
                    }
                    Role::Fenced => {
                        let _ = reply.send(error_response(
                            "fenced",
                            Some("this node was deposed or diverged; it refuses mutations"),
                            None,
                        ));
                        continue;
                    }
                }
            }
            if state.degraded {
                let _ = reply.send(error_response(
                    "degraded",
                    Some("ticker failed; mutations refused, reads still served"),
                    None,
                ));
                continue;
            }
        }
        let is_tick = matches!(request, Request::Tick);
        if is_tick && config.faults.is_armed() {
            if let Some((s, e, delay_ms)) = config.faults.slow_shard_tick {
                // Stall *before* the tick that would close epoch `e` is
                // applied: the router's budget expires while the shard's
                // durable state is still behind.
                if shard as u64 == s && core.engine().epoch() + 1 == e {
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
            }
        }
        let response = core.handle(&request, &shared.metrics);
        if is_tick {
            // Refresh this shard's demand summary *before* replying, so
            // the router's coordination step — which runs after all tick
            // replies are in — reads post-epoch demand, never stale.
            *shared.demand.lock().expect("demand lock poisoned") = core.engine().aggregate_demand();
            if config.faults.is_armed() {
                if let Some((s, e)) = config.faults.panic_shard_ticker {
                    // Panic *after* the tick is durable: recovery must
                    // replay it bit-identically. Cannot re-fire after a
                    // restart — the recovered engine is already past `e`.
                    if shard as u64 == s && core.engine().epoch() == e {
                        panic!("injected shard ticker panic after epoch {e}");
                    }
                }
                if let Some((s, e)) = config.faults.drop_tick_reply {
                    // Durable work done, reply lost: the router sees a
                    // timeout while the shard's state stays consistent.
                    if shard as u64 == s && core.engine().epoch() == e {
                        continue;
                    }
                }
            }
        }
        let _ = reply.send(response);
    }

    // Export progress for the reader-thread ping path, and refresh the
    // durability/replication gauges, every pass.
    shared.epoch.store(core.engine().epoch(), Ordering::SeqCst);
    shared
        .wal_seq
        .store(core.events_applied(), Ordering::SeqCst);
    if let Some(wal) = core.wal() {
        shared
            .metrics
            .wal_segments
            .store(wal.segment_count() as u64, Ordering::Relaxed);
        shared
            .metrics
            .wal_bytes
            .store(wal.total_bytes(), Ordering::Relaxed);
        shared
            .metrics
            .checkpoint_bytes
            .store(wal.checkpoint_bytes(), Ordering::Relaxed);
    }
    if let Some(repl) = shared.repl.as_ref() {
        shared
            .metrics
            .standby_connected
            .store(repl.standby_count(), Ordering::Relaxed);
        if repl.role() == Role::Primary {
            shared
                .metrics
                .repl_lag_records
                .store(repl.lag_records(core.events_applied()), Ordering::Relaxed);
        }
    }

    // Bus closure ([`Server::shutdown`] or Drop) is a drain signal
    // too: nothing further can be admitted, so serve what is queued,
    // retire the core, and exit rather than spin forever.
    if !state.draining && shared.bus.is_closed() {
        state.draining = true;
    }

    if state.draining {
        // One more race-free drain: items admitted between our drain
        // and the close are served, not dropped.
        if shared.bus.depth() > 0 {
            return false;
        }
        let snapshot = core.final_snapshot();
        for reply in state.shutdown_replies.drain(..) {
            let _ = reply.send(ok_response(vec![
                ("snapshot", Value::str(snapshot.clone())),
                ("server", shared.metrics.snapshot().to_json_value()),
            ]));
        }
        shared.stop.store(true, Ordering::SeqCst);
        *shared.retired.lock().expect("retired lock poisoned") = slot.take();
        return true;
    }

    if let Some(repl) = shared.repl.as_ref() {
        if repl.role() == Role::Primary {
            let now = config.clock.now();
            if state.next_hb.is_none_or(|at| now >= at) {
                repl.publish_heartbeat(repl.term(), core.events_applied());
                state.next_hb = Some(now + repl.config().heartbeat_interval);
            }
        }
    }

    if let (Some(interval), Some(at)) = (config.epoch_interval, state.next_tick) {
        if config.clock.now() >= at {
            // A degraded ticker stops advancing epochs: the engine is
            // behind its log, and piling ticks on top would widen the
            // divergence recovery has to repair. A standby does not run
            // its own clock either — its epochs arrive on the stream.
            let is_primary = shared
                .repl
                .as_ref()
                .is_none_or(|repl| repl.role() == Role::Primary);
            if !state.degraded && is_primary {
                let _ = core.handle(&Request::Tick, &shared.metrics);
            }
            state.next_tick = Some(config.clock.now() + interval);
        }
    }
    false
}

/// Performs a standby→primary promotion inside the ticker (so role
/// flips are serialized with event application): bump the term, flip
/// the role, restart timed epochs and heartbeats, and best-effort
/// depose the old primary by presenting it the new term.
fn handle_promote(state: &mut TickerState, shared: &Arc<Shared>, config: &ServeConfig) -> Value {
    let Some(repl) = shared.repl.as_ref() else {
        return error_response("protocol", Some("replication is not configured"), None);
    };
    match repl.role() {
        Role::Fenced => error_response(
            "fenced",
            Some("this node was deposed or diverged; it cannot be promoted"),
            None,
        ),
        // Idempotent: promoting a primary reports its standing.
        Role::Primary => ok_response(vec![
            ("role", Value::str("primary")),
            ("term", Value::from_u64(repl.term())),
        ]),
        Role::Standby => {
            let (term, old_leader) = repl.promote(&shared.metrics);
            state.next_tick = config.epoch_interval.map(|i| config.clock.now() + i);
            state.next_hb = Some(config.clock.now());
            if let Some(addr) = old_leader {
                // Detached: never block the ticker on a dead peer's TCP
                // timeout.
                let _ = std::thread::Builder::new()
                    .name("ref-serve-fence".to_string())
                    .spawn(move || fence_notify(addr, term));
            }
            ok_response(vec![
                ("role", Value::str("primary")),
                ("term", Value::from_u64(term)),
            ])
        }
    }
}

/// Applies one replication-stream command on the ticker thread.
fn handle_repl_command(
    core: &mut ServiceCore,
    command: ReplCommand,
    state: &mut TickerState,
    shared: &Arc<Shared>,
    config: &ServeConfig,
) {
    let Some(repl) = shared.repl.as_ref() else {
        return;
    };
    // A degraded ticker must not keep applying the stream: the engine
    // already missed an event its WAL holds.
    if state.degraded {
        return;
    }
    match command {
        ReplCommand::AutoPromote => {
            if repl.role() == Role::Standby {
                let _ = handle_promote(state, shared, config);
            }
        }
        ReplCommand::Restore { seq, snapshot } => {
            if repl.role() != Role::Standby {
                return;
            }
            match core.restore_from_snapshot(seq, &snapshot) {
                Ok(()) => repl.send_ack(core.events_applied(), None),
                Err(_) => {
                    ServeMetrics::bump(&shared.metrics.wal_errors);
                    repl.request_resync();
                }
            }
        }
        ReplCommand::Apply { seq, event } => {
            if repl.role() != Role::Standby {
                return;
            }
            match core.apply_repl(seq, event, &shared.metrics) {
                ReplApply::Applied { epoch_fp } => repl.send_ack(core.events_applied(), epoch_fp),
                ReplApply::Skipped => repl.send_ack(core.events_applied(), None),
                // A hole or a failed append cannot be repaired
                // in-stream: reconnect and catch up from the log.
                ReplApply::Gap | ReplApply::WalError => repl.request_resync(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use ref_core::resource::Capacity;

    fn tick_on_demand_config() -> ServeConfig {
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        ServeConfig::new(market).with_epoch_interval(None)
    }

    #[test]
    fn server_round_trips_a_basic_session() {
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.6, 0.4]).unwrap();
        client.join_truth(2, 1.0, &[0.2, 0.8]).unwrap();
        for _ in 0..20 {
            client.tick().unwrap();
        }
        let reply = client.query_agent(1).unwrap();
        let bundle = reply.get("bundle").unwrap().as_array().unwrap();
        assert!((bundle[0].as_f64().unwrap() - 18.0).abs() < 0.6, "{reply}");
        client.leave(2).unwrap();
        let report = server.shutdown();
        assert_eq!(report.metrics.protocol_errors, 0);
        assert!(report.snapshot.starts_with("refmarket-snapshot"));
        // join, join, 20 ticks, query is not journaled, leave.
        assert_eq!(report.journal.len(), 23);
    }

    #[test]
    fn malformed_lines_get_protocol_errors_and_do_not_kill_the_connection() {
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client.call_line("this is not json").unwrap();
        assert_eq!(reply.get("error").and_then(Value::as_str), Some("protocol"));
        let reply = client.call_line(r#"{"op":"warp"}"#).unwrap();
        assert_eq!(reply.get("error").and_then(Value::as_str), Some("protocol"));
        // The connection still works.
        client.join_external(9).unwrap();
        let report = server.shutdown();
        assert_eq!(report.metrics.protocol_errors, 2);
        assert_eq!(report.journal.len(), 1);
    }

    #[test]
    fn wire_shutdown_returns_final_snapshot_and_bounces_stragglers() {
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        a.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
        a.tick().unwrap();
        let reply = b.shutdown().unwrap();
        let snapshot = reply.get("snapshot").unwrap().as_str().unwrap();
        assert!(snapshot.starts_with("refmarket-snapshot"));
        // Post-shutdown requests are refused at admission.
        let late = a.call_line(r#"{"op":"tick"}"#).unwrap();
        assert_eq!(
            late.get("error").and_then(Value::as_str),
            Some("shutting_down")
        );
        let report = server.wait();
        assert_eq!(report.metrics.rejected_shutdown, 1);
        assert_eq!(report.snapshot, snapshot);
    }

    #[test]
    fn wait_blocks_until_a_wire_shutdown_not_before() {
        // Regression: `wait` must passively await a wire shutdown, not
        // inject a synthetic one and drain the server out from under
        // its clients.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let addr = server.addr();
        let driver = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
            client.tick().unwrap();
            client.shutdown().unwrap();
        });
        let report = server.wait();
        driver.join().unwrap();
        // Had wait() shut the server down itself, the driver's requests
        // would have bounced with `shutting_down` and panicked above.
        assert_eq!(report.journal.len(), 2);
    }

    #[test]
    fn expired_deadlines_are_dropped_in_queue() {
        // No epoch timer and a tick that takes long enough to let the
        // queued request expire: enforce with a tiny deadline.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
        // Deadline 0 ms: expired by the time the ticker sees it.
        let reply = client
            .call_line(r#"{"op":"query","deadline_ms":0}"#)
            .unwrap();
        assert_eq!(reply.get("error").and_then(Value::as_str), Some("deadline"));
        let report = server.shutdown();
        assert_eq!(report.metrics.rejected_deadline, 1);
    }

    #[test]
    fn dropping_a_running_server_does_not_hang() {
        // Regression: Drop closes the bus; the ticker must treat the
        // closure itself as the drain signal and exit, not wait for a
        // Shutdown item that can no longer be admitted.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            drop(server);
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("Drop deadlocked: the ticker never exited on bus closure");
    }

    #[test]
    fn shutdown_succeeds_even_with_a_zero_control_quota() {
        // Regression: shutdown() used a synthetic Shutdown item that a
        // full (here: zero) control quota could bounce, leaving collect()
        // joining a ticker that never drained.
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let config = ServeConfig::new(market)
            .with_epoch_interval(None)
            .with_quotas(Quotas {
                control: 0,
                observe: 1,
                query: 1,
            });
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let report = server.shutdown();
            let _ = tx.send(report);
        });
        let report = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("shutdown hung with an exhausted control quota");
        assert!(report.snapshot.starts_with("refmarket-snapshot"));
    }

    #[test]
    fn fragmented_request_lines_survive_read_timeouts() {
        // Regression: a writer that pauses mid-line (longer than the
        // reader's 50ms poll timeout) must not have the partial prefix
        // discarded and the suffix parsed as its own request.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let line = r#"{"op":"tick"}"#;
        let (head, tail) = line.split_at(6);
        stream.write_all(head.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(300));
        stream.write_all(tail.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let reply = Value::parse(reply.trim_end()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)), "{reply}");
        let report = server.shutdown();
        assert_eq!(report.metrics.protocol_errors, 0);
        assert_eq!(report.metrics.epochs, 1);
    }

    #[test]
    fn finished_reader_handles_are_reaped_while_running() {
        // Regression: the reader registry must not grow with every
        // connection ever accepted — closed connections are reaped by
        // the acceptor, not hoarded until shutdown.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        for agent in 0..4 {
            let mut client = Client::connect(server.addr()).unwrap();
            client.join_external(agent).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let live = server.readers.lock().unwrap().len();
            if live == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{live} finished reader handles were never reaped"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let report = server.shutdown();
        assert_eq!(report.journal.len(), 4);
    }

    #[test]
    fn timed_epochs_advance_without_tick_requests() {
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let config = ServeConfig::new(market).with_epoch_interval(Some(Duration::from_millis(1)));
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.6, 0.4]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let reply = client.query().unwrap();
            if reply.get("epoch").unwrap().as_u64().unwrap() >= 5 {
                break;
            }
            assert!(Instant::now() < deadline, "timed epochs never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = server.shutdown();
        assert!(report.metrics.epochs >= 5);
        assert!(report.metrics.epoch_latency.count >= 5);
    }

    fn sharded_config(shards: usize) -> ServeConfig {
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        ServeConfig::new(market)
            .with_epoch_interval(None)
            .with_shards(shards)
    }

    #[test]
    fn sharded_server_routes_ticks_and_aggregates() {
        let server = Server::start("127.0.0.1:0", sharded_config(4)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for agent in 0..16u64 {
            client.join_truth(agent, 1.0, &[0.6, 0.4]).unwrap();
        }
        let tick = client.tick().unwrap();
        assert_eq!(tick.get("epoch").and_then(Value::as_u64), Some(1));
        let shards = tick.get("shards").and_then(Value::as_array).unwrap();
        assert_eq!(shards.len(), 4);
        assert!(tick.get("drift").is_some(), "{tick}");
        assert_eq!(
            tick.get("drift_bound_ok").and_then(Value::as_bool),
            Some(true),
            "{tick}"
        );
        // Market-wide query sums agents across shards and reports the
        // fleet epoch.
        let query = client.query().unwrap();
        let agents = query.get("agents").and_then(Value::as_array).unwrap();
        assert_eq!(agents.len(), 16, "{query}");
        // Sorted merge: stable regardless of shard reply order.
        let ids: Vec<u64> = agents.iter().filter_map(Value::as_u64).collect();
        assert_eq!(ids, (0..16u64).collect::<Vec<_>>());
        assert_eq!(query.get("epoch").and_then(Value::as_u64), Some(1));
        // Per-agent queries route to the owning shard and still work.
        let one = client.query_agent(3).unwrap();
        assert!(one.get("bundle").is_some(), "{one}");
        // Ping reports placement.
        let ping = client.call_line(r#"{"op":"ping","agent":3}"#).unwrap();
        assert_eq!(ping.get("shards").and_then(Value::as_u64), Some(4));
        let shard_of = ping.get("shard_of").and_then(Value::as_u64).unwrap();
        assert_eq!(shard_of, server.shard_of(3) as u64);
        assert_eq!(
            ping.get("wal_seqs")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(4)
        );
        // Metrics text carries per-shard labels.
        let text = client.metrics_text().unwrap();
        assert!(text.contains("refserve_accepted{shard=\"0\"}"), "{text}");
        assert!(text.contains("refmarket_epochs{shard=\"3\"}"), "{text}");

        let report = server.shutdown();
        assert_eq!(report.shards.len(), 4);
        // Every shard ran the same single epoch, in lockstep.
        for shard in &report.shards {
            assert_eq!(shard.metrics.epochs, 1);
            assert!(shard.journal.contains(&MarketEvent::EpochTick));
        }
        // Each join landed exactly where the ring says it should.
        let ring = HashRing::new(
            4,
            ServeConfig::new(MarketConfig::new(Capacity::new(vec![1.0]).unwrap())).ring_seed,
        );
        for agent in 0..16u64 {
            let owner = ring.shard_of(agent);
            for (k, shard) in report.shards.iter().enumerate() {
                let has = shard
                    .journal
                    .iter()
                    .any(|e| matches!(e, MarketEvent::AgentJoined { id, .. } if *id == agent));
                assert_eq!(has, k == owner, "agent {agent} shard {k}");
            }
        }
    }

    #[test]
    fn sharded_timed_epochs_run_in_lockstep() {
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let config = ServeConfig::new(market)
            .with_epoch_interval(Some(Duration::from_millis(2)))
            .with_shards(2);
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for agent in 0..6u64 {
            client.join_truth(agent, 1.0, &[0.5, 0.5]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let reply = client.query().unwrap();
            if reply.get("epoch").unwrap().as_u64().unwrap() >= 5 {
                break;
            }
            assert!(Instant::now() < deadline, "coordinator never ticked");
            std::thread::sleep(Duration::from_millis(5));
        }
        let status = server.coordination().unwrap();
        assert!(status.rounds >= 5, "{status:?}");
        let report = server.shutdown();
        // Lockstep: the two shards' epoch counts differ by at most the
        // one round that may be in flight at shutdown.
        let a = report.shards[0].metrics.epochs;
        let b = report.shards[1].metrics.epochs;
        assert!(a.abs_diff(b) <= 1, "epochs diverged: {a} vs {b}");
    }

    #[test]
    fn wire_reallot_is_an_operator_op_single_shard_only() {
        // Single shard: an operator reallot is a journaled control op.
        let server = Server::start("127.0.0.1:0", sharded_config(1)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
        let reply = client
            .call_line(r#"{"op":"reallot","capacity":[30.0,10.0]}"#)
            .unwrap();
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)), "{reply}");
        client.tick().unwrap();
        let report = server.shutdown();
        assert!(report
            .journal
            .iter()
            .any(|e| matches!(e, MarketEvent::CapacityRealloted { capacity } if capacity == &vec![30.0, 10.0])));

        // Sharded: the coordinator owns the capacity split.
        let server = Server::start("127.0.0.1:0", sharded_config(2)).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client
            .call_line(r#"{"op":"reallot","capacity":[30.0,10.0]}"#)
            .unwrap();
        assert_eq!(
            reply.get("error").and_then(Value::as_str),
            Some("protocol"),
            "{reply}"
        );
        server.shutdown();
    }

    #[test]
    fn sharding_excludes_in_process_replication() {
        let dir =
            std::env::temp_dir().join(format!("ref-shard-repl-{}-{}", std::process::id(), line!()));
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let config = ServeConfig::new(market)
            .with_shards(2)
            .with_wal(WalConfig::new(&dir))
            .with_repl(ReplConfig::primary("127.0.0.1:0"));
        let err = Server::start("127.0.0.1:0", config).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_hints_scale_with_queue_depth() {
        let quotas = Quotas {
            control: 8,
            observe: 8,
            query: 8,
        };
        let calm = retry_hint(25, 0, quotas);
        assert_eq!(calm, 25);
        let busy = retry_hint(25, 24, quotas);
        assert!(busy > calm, "busy={busy} calm={calm}");
        // The hint saturates instead of growing without bound.
        assert_eq!(retry_hint(25, usize::MAX, quotas), 1000);
        // A zero configured hint still yields a positive, finite hint.
        assert!(retry_hint(0, 5, quotas) >= 1);
    }

    #[test]
    fn coordinator_reallotments_shift_capacity_toward_demand() {
        // Two shards; all load on the agents of one of them. After a few
        // coordinated epochs the loaded shard's capacity allotment must
        // exceed the idle shard's.
        let server = Server::start("127.0.0.1:0", sharded_config(2)).unwrap();
        let ring = HashRing::new(2, server.config().ring_seed);
        let mut client = Client::connect(server.addr()).unwrap();
        let mut joined = 0u64;
        let mut agent = 0u64;
        while joined < 8 {
            if ring.shard_of(agent) == 0 {
                client.join_truth(agent, 1.0, &[0.7, 0.3]).unwrap();
                joined += 1;
            }
            agent += 1;
        }
        for _ in 0..12 {
            client.tick().unwrap();
        }
        let status = server.coordination().unwrap();
        assert!(status.rounds >= 12, "{status:?}");
        let report = server.shutdown();
        // Shard 0 received reallotments granting it more than the equal
        // split; shard 1 was cut below it.
        let realloted: Vec<&Vec<f64>> = report.shards[0]
            .journal
            .iter()
            .filter_map(|e| match e {
                MarketEvent::CapacityRealloted { capacity } => Some(capacity),
                _ => None,
            })
            .collect();
        assert!(!realloted.is_empty(), "coordinator never realloted");
        let last = realloted.last().unwrap();
        assert!(last[0] > 12.0, "loaded shard allotment {last:?}");
    }

    /// First agent id the ring places on `shard`.
    fn agent_on(ring: &HashRing, shard: usize) -> u64 {
        (0..u64::MAX)
            .find(|a| ring.shard_of(*a) == shard)
            .expect("ring covers every shard")
    }

    #[test]
    fn down_shards_fail_fast_with_shard_unavailable() {
        // Regression: agent ops to a shard with a dead ticker used to
        // queue behind it and burn the full 30s reply timeout. Now the
        // router fails them fast with a retry hint.
        let config = sharded_config(2).with_faults(FaultPlan {
            panic_shard_ticker: Some((1, 1)),
            ..FaultPlan::default()
        });
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let ring = HashRing::new(2, server.config().ring_seed);
        let mut client = Client::connect(server.addr()).unwrap();
        let on1 = agent_on(&ring, 1);
        client
            .join_truth(agent_on(&ring, 0), 1.0, &[0.5, 0.5])
            .unwrap();
        client.join_truth(on1, 1.0, &[0.5, 0.5]).unwrap();
        // Shard 1 applies epoch 1, then its ticker panics: the reply is
        // lost, the router marks the shard Down, the report is partial.
        let tick = client.tick().unwrap();
        let report = tick.get("report").expect("merged report");
        assert_eq!(report.get("partial"), Some(&Value::Bool(true)), "{tick}");
        assert_eq!(
            report
                .get("missing_shards")
                .and_then(Value::as_array)
                .and_then(|m| m.first())
                .and_then(Value::as_u64),
            Some(1),
            "{tick}"
        );
        assert!(report.get("fairness").is_none(), "{tick}");
        assert_eq!(server.shard_health(1), ShardHealth::Down);
        // The agent op to the Down shard answers immediately.
        let started = Instant::now();
        let reply = client.query_agent(on1).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fast-fail took {:?}",
            started.elapsed()
        );
        match reply {
            crate::client::ClientError::Server {
                code,
                retry_after_ms,
                shard,
                ..
            } => {
                assert_eq!(code, "shard_unavailable");
                assert!(retry_after_ms.is_some());
                assert_eq!(shard, Some(1));
            }
            other => panic!("expected a server error, got {other:?}"),
        }
        // Fleet ops answer fast too: the fan skips the Down shard.
        let started = Instant::now();
        let tick = client.tick().unwrap();
        assert!(started.elapsed() < Duration::from_secs(5));
        let shards = tick.get("shards").and_then(Value::as_array).unwrap();
        assert_eq!(
            shards[1].get("error").and_then(Value::as_str),
            Some("shard_unavailable"),
            "{tick}"
        );
        // Health surfaces on ping and in the gauges.
        let ping = client.ping().unwrap();
        let health = ping.get("shard_health").and_then(Value::as_array).unwrap();
        assert_eq!(health[0].as_str(), Some("healthy"), "{ping}");
        assert_eq!(health[1].as_str(), Some("down"), "{ping}");
        assert_eq!(server.metrics().shards_down, 1);
        // No WAL: the shard stays down, but shutdown still drains it.
        let report = server.shutdown();
        assert_eq!(report.shards[1].metrics.ticker_panics, 1);
    }

    #[test]
    fn at_quorum_coordination_continues_with_partial_reports() {
        // 3 shards, default quorum ⌈4/2⌉ = 2: one dead shard leaves the
        // fleet exactly at quorum, so reallotment keeps running while
        // every merged report is stamped partial.
        let config = sharded_config(3).with_faults(FaultPlan {
            panic_shard_ticker: Some((2, 1)),
            ..FaultPlan::default()
        });
        assert_eq!(config.effective_quorum(), 2);
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let ring = HashRing::new(3, server.config().ring_seed);
        let mut client = Client::connect(server.addr()).unwrap();
        client
            .join_truth(agent_on(&ring, 0), 1.0, &[0.7, 0.3])
            .unwrap();
        client
            .join_truth(agent_on(&ring, 1), 1.0, &[0.3, 0.7])
            .unwrap();
        client.tick().unwrap();
        let tick = client.tick().unwrap();
        let report = tick.get("report").expect("merged report");
        assert_eq!(report.get("partial"), Some(&Value::Bool(true)), "{tick}");
        let status = server.coordination().unwrap();
        assert_eq!(status.rounds, 2, "{status:?}");
        let metrics = server.metrics();
        assert!(metrics.partial_epochs >= 2, "{metrics:?}");
        assert_eq!(metrics.quorum_freezes, 0, "{metrics:?}");
        assert_eq!(metrics.shards_down, 1, "{metrics:?}");
        server.shutdown();
    }

    #[test]
    fn below_quorum_freezes_allotments() {
        // Same fleet, but the operator demands all 3 shards: one dead
        // shard drops the fleet below quorum and the coordinator never
        // steps.
        let config = sharded_config(3).with_quorum(3).with_faults(FaultPlan {
            panic_shard_ticker: Some((2, 1)),
            ..FaultPlan::default()
        });
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let ring = HashRing::new(3, server.config().ring_seed);
        let mut client = Client::connect(server.addr()).unwrap();
        client
            .join_truth(agent_on(&ring, 0), 1.0, &[0.7, 0.3])
            .unwrap();
        client.tick().unwrap();
        client.tick().unwrap();
        let status = server.coordination().unwrap();
        assert_eq!(status.rounds, 0, "{status:?}");
        let metrics = server.metrics();
        assert_eq!(metrics.quorum_freezes, 2, "{metrics:?}");
        server.shutdown();
    }

    #[test]
    fn missing_shards_accrue_no_temporal_si_violations() {
        // A partial fleet must never book temporal-SI violations against
        // agents on the missing shard: its epochs freeze (no audits run
        // there) rather than run against phantom allotments.
        let config = sharded_config(2).with_quorum(1).with_faults(FaultPlan {
            panic_shard_ticker: Some((1, 2)),
            ..FaultPlan::default()
        });
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let ring = HashRing::new(2, server.config().ring_seed);
        let mut client = Client::connect(server.addr()).unwrap();
        client
            .join_truth(agent_on(&ring, 0), 1.0, &[0.7, 0.3])
            .unwrap();
        client
            .join_truth(agent_on(&ring, 1), 1.0, &[0.3, 0.7])
            .unwrap();
        for _ in 0..10 {
            client.tick().unwrap();
        }
        let report = server.shutdown();
        // Shard 0 kept ticking past the failure; shard 1 froze at the
        // epoch its panic made durable.
        assert_eq!(report.shards[0].metrics.epochs, 10);
        assert_eq!(report.shards[1].metrics.epochs, 2);
        assert!(
            report.shards[1]
                .market_metrics_json
                .contains("\"temporal_si_violations\":0"),
            "{}",
            report.shards[1].market_metrics_json
        );
    }

    #[test]
    fn supervisor_restarts_a_panicked_shard_from_its_wal() {
        let dir = std::env::temp_dir().join(format!(
            "ref-shard-restart-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let config = ServeConfig::new(market.clone())
            .with_epoch_interval(None)
            .with_shards(2)
            .with_wal(WalConfig::new(&dir))
            .with_faults(FaultPlan {
                panic_shard_ticker: Some((1, 2)),
                ..FaultPlan::default()
            });
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let ring = HashRing::new(2, server.config().ring_seed);
        let mut client = Client::connect(server.addr()).unwrap();
        let on1 = agent_on(&ring, 1);
        client
            .join_truth(agent_on(&ring, 0), 1.0, &[0.5, 0.5])
            .unwrap();
        client.join_truth(on1, 1.0, &[0.5, 0.5]).unwrap();
        client.tick().unwrap();
        client.tick().unwrap(); // shard 1 panics after epoch 2 is durable
        assert_eq!(server.shard_health(1), ShardHealth::Down);
        // The supervisor restarts the shard from shard-1's WAL; clean
        // ticks then heal it back to Healthy.
        let deadline = Instant::now() + Duration::from_secs(20);
        while server.shard_health(1) != ShardHealth::Healthy {
            assert!(Instant::now() < deadline, "shard 1 never healed");
            client.tick().unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.metrics().shard_restarts, 1);
        // The recovered shard serves mutations again.
        let reply = client.query_agent(on1).unwrap();
        assert!(reply.get("bundle").is_some(), "{reply}");
        let report = server.shutdown();
        // Both shard WALs replay offline to exactly the shutdown
        // snapshots: the restart lost nothing durable.
        for (k, shard) in report.shards.iter().enumerate() {
            let core = ServiceCore::recover(
                shard_market_config(&market, 2),
                JournalLimit::default(),
                WalConfig::new(dir.join(format!("shard-{k}"))),
                FaultPlan::none(),
            )
            .unwrap();
            assert_eq!(core.final_snapshot(), shard.snapshot, "shard {k}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
