//! The TCP transport: acceptor, per-connection readers, and the ticker.
//!
//! Thread model (one server):
//!
//! ```text
//!            ┌──────────┐   lines    ┌─────────────┐  admitted   ┌─────────┐
//!  TCP  ────▶│ acceptor │──spawns──▶ │ reader (xN) │──try_send──▶│   bus   │
//!            └──────────┘            │ parse/admit │  (bounded,  └────┬────┘
//!                                    │ await reply │  per-class)      │ drain
//!                                    └─────────────┘                  ▼
//!                                          ▲                    ┌──────────┐
//!                                          │ reply via mpsc     │  ticker  │
//!                                          └────────────────────│ (engine) │
//!                                                               └──────────┘
//! ```
//!
//! Readers never touch the engine: they parse, classify, and either admit
//! the request to the bounded bus or bounce it (`overloaded`,
//! `shutting_down`). The single ticker thread owns the [`ServiceCore`],
//! drains the bus in arrival order, drops requests whose in-queue
//! deadline expired, runs timed epochs, and fans each response back
//! through the per-request channel. Graceful shutdown (the `shutdown` op
//! or [`Server::shutdown`]) closes the bus, finishes every admitted
//! request, flushes a final snapshot, and joins every thread.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ref_market::{MarketConfig, MarketEvent};

use crate::bus::{Bus, Quotas, SendError};
use crate::core::{JournalLimit, ReplApply, ServiceCore};
use crate::fault::FaultPlan;
use crate::json::Value;
use crate::metrics::{ServeMetrics, ServeMetricsSnapshot};
use crate::protocol::{error_response, not_primary_response, ok_response, parse_request, Request};
use crate::repl::{
    fence_notify, repl_acceptor_loop, standby_loop, ReplCommand, ReplConfig, ReplShared, Role,
};
use crate::wal::{self, WalConfig};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The market the server fronts.
    pub market: MarketConfig,
    /// Timer-driven epoch cadence; `None` runs epochs only on `tick`
    /// requests (deterministic mode for tests and examples).
    pub epoch_interval: Option<Duration>,
    /// Per-class bus quotas (the backpressure bound).
    pub quotas: Quotas,
    /// Retry hint attached to `overloaded` responses, in milliseconds.
    pub retry_after_ms: u64,
    /// Maximum simultaneously open connections; further accepts are
    /// bounced with `overloaded`.
    pub max_connections: usize,
    /// Journal retention cap (see [`JournalLimit`]).
    pub journal_limit: JournalLimit,
    /// Reader poll interval: how long a blocked read waits before
    /// re-checking the shutdown flag.
    pub read_timeout: Duration,
    /// How long a reader waits for the ticker's reply before giving up
    /// with a `timeout` response.
    pub reply_timeout: Duration,
    /// Durability: when set, every admitted event is appended to this
    /// write-ahead log before it is applied, and [`Server::recover`]
    /// can resume the market after a crash.
    pub wal: Option<WalConfig>,
    /// Replication: when set, this node is one half of a primary/standby
    /// pair (see [`ReplConfig`]). Requires a WAL — the replication
    /// stream *is* WAL shipping.
    pub repl: Option<ReplConfig>,
    /// Deterministic fault injection (testing seam; injects nothing by
    /// default).
    pub faults: FaultPlan,
}

impl ServeConfig {
    /// A configuration with default serving knobs around `market`.
    pub fn new(market: MarketConfig) -> ServeConfig {
        ServeConfig {
            market,
            epoch_interval: Some(Duration::from_millis(10)),
            quotas: Quotas::default(),
            retry_after_ms: 5,
            max_connections: 256,
            journal_limit: JournalLimit::default(),
            read_timeout: Duration::from_millis(50),
            reply_timeout: Duration::from_secs(30),
            wal: None,
            repl: None,
            faults: FaultPlan::default(),
        }
    }

    /// Sets the epoch cadence (`None` = tick-on-request only).
    pub fn with_epoch_interval(mut self, interval: Option<Duration>) -> ServeConfig {
        self.epoch_interval = interval;
        self
    }

    /// Sets the per-class quotas.
    pub fn with_quotas(mut self, quotas: Quotas) -> ServeConfig {
        self.quotas = quotas;
        self
    }

    /// Sets the journal retention cap.
    pub fn with_journal_limit(mut self, limit: JournalLimit) -> ServeConfig {
        self.journal_limit = limit;
        self
    }

    /// Sets the maximum simultaneous connections.
    pub fn with_max_connections(mut self, max: usize) -> ServeConfig {
        self.max_connections = max;
        self
    }

    /// Attaches a write-ahead log for durability.
    pub fn with_wal(mut self, wal: WalConfig) -> ServeConfig {
        self.wal = Some(wal);
        self
    }

    /// Makes this node one half of a replicated pair (requires a WAL).
    pub fn with_repl(mut self, repl: ReplConfig) -> ServeConfig {
        self.repl = Some(repl);
        self
    }

    /// Arms a deterministic fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> ServeConfig {
        self.faults = faults;
        self
    }
}

/// One item riding the bus into the ticker: an admitted client request,
/// or a command from the replication stream (the ticker is the sole
/// engine mutator, so replicated records apply through the same queue).
pub(crate) enum Item {
    /// An admitted client request awaiting its reply.
    Client {
        /// The parsed request.
        request: Request,
        /// In-queue expiry, from the request's `deadline_ms`.
        deadline: Option<Instant>,
        /// Where the ticker sends the response.
        reply: mpsc::Sender<Value>,
    },
    /// A replication-stream command (standby apply path, promotions).
    Repl(ReplCommand),
}

/// Everything the ticker hands back when the server stops.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final market snapshot (text wire format), taken after the drain.
    pub snapshot: String,
    /// The accepted-event journal (empty if it overflowed).
    pub journal: Vec<MarketEvent>,
    /// Whether the journal overflowed its retention cap.
    pub journal_overflowed: bool,
    /// Server counters at shutdown.
    pub metrics: ServeMetricsSnapshot,
    /// Market counters at shutdown, as their stable JSON line.
    pub market_metrics_json: String,
}

pub(crate) struct Shared {
    pub(crate) bus: Bus<Item>,
    pub(crate) metrics: ServeMetrics,
    pub(crate) stop: AtomicBool,
    pub(crate) open_connections: AtomicUsize,
    pub(crate) retired: Mutex<Option<ServiceCore>>,
    /// Replication state, when configured.
    pub(crate) repl: Option<Arc<ReplShared>>,
    /// Ticker-exported engine epoch, for the reader-thread `ping` path.
    pub(crate) epoch: AtomicU64,
    /// Ticker-exported WAL sequence (events applied), ditto.
    pub(crate) wal_seq: AtomicU64,
    pub(crate) started: Instant,
}

/// A running ref-serve instance.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    repl_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    config: ServeConfig,
    acceptor: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    repl_threads: Vec<JoinHandle<()>>,
    repl_handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("stopped", &self.stop.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and ticker threads with a *fresh* market.
    ///
    /// # Errors
    ///
    /// Returns the bind error, an invalid [`MarketConfig`] as
    /// [`std::io::ErrorKind::InvalidInput`], or — when a WAL is
    /// configured and its directory already holds state — an
    /// `InvalidInput` error directing the caller to [`Server::recover`],
    /// so a fresh boot can never silently shadow recoverable history.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        if let Some(wal_config) = &config.wal {
            if wal::dir_has_state(&wal_config.dir)? {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "wal directory {:?} already holds state; use Server::recover",
                        wal_config.dir
                    ),
                ));
            }
        }
        Server::launch(addr, config)
    }

    /// Binds `addr` and resumes the market persisted in the configured
    /// WAL directory: newest valid checkpoint restored, WAL tail
    /// replayed (a torn final record is truncated away), state
    /// bit-identical to an offline replay of the full history. An empty
    /// directory starts a fresh market, so recover-on-boot is always
    /// safe.
    ///
    /// # Errors
    ///
    /// Everything [`Server::start`] returns, plus recovery failures:
    /// interior WAL corruption, or a checkpoint from a different market
    /// configuration ([`std::io::ErrorKind::InvalidData`] /
    /// [`std::io::ErrorKind::InvalidInput`]).
    pub fn recover(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        if config.wal.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Server::recover needs a WAL (ServeConfig::with_wal)",
            ));
        }
        Server::launch(addr, config)
    }

    fn launch(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        if config.repl.is_some() && config.wal.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "replication requires a write-ahead log (ServeConfig::with_wal)",
            ));
        }
        let mut core = match &config.wal {
            Some(wal_config) => ServiceCore::recover(
                config.market.clone(),
                config.journal_limit,
                wal_config.clone(),
                config.faults.clone(),
            )?,
            None => ServiceCore::new(config.market.clone(), config.journal_limit)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?
                .with_faults(config.faults.clone()),
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // Bind the replication listener before any thread starts, so a
        // bad address fails the launch instead of a background thread.
        let repl_setup = match &config.repl {
            Some(repl_config) => {
                let wal_dir = config.wal.as_ref().expect("checked above").dir.clone();
                let repl_listener = TcpListener::bind(&repl_config.listen)?;
                repl_listener.set_nonblocking(true)?;
                let repl_addr = repl_listener.local_addr()?;
                let repl = Arc::new(ReplShared::new(repl_config.clone(), wal_dir));
                repl.set_self_addrs(addr.to_string(), repl_addr.to_string());
                core.attach_repl(Arc::clone(&repl));
                Some((repl, repl_listener, repl_addr))
            }
            None => None,
        };

        let shared = Arc::new(Shared {
            bus: Bus::new(config.quotas),
            metrics: ServeMetrics::new(),
            stop: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            retired: Mutex::new(None),
            repl: repl_setup.as_ref().map(|(repl, _, _)| Arc::clone(repl)),
            epoch: AtomicU64::new(core.engine().epoch()),
            wal_seq: AtomicU64::new(core.events_applied()),
            started: Instant::now(),
        });
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let repl_handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let ticker = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::Builder::new()
                .name("ref-serve-ticker".to_string())
                .spawn(move || ticker_loop(core, &shared, &config))
                .expect("spawn ticker")
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            let config = config.clone();
            std::thread::Builder::new()
                .name("ref-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(listener, &shared, &readers, &config))
                .expect("spawn acceptor")
        };

        let mut repl_addr = None;
        let mut repl_threads = Vec::new();
        if let Some((repl, repl_listener, bound)) = repl_setup {
            repl_addr = Some(bound);
            {
                let shared = Arc::clone(&shared);
                let handlers = Arc::clone(&repl_handlers);
                repl_threads.push(
                    std::thread::Builder::new()
                        .name("ref-serve-repl-accept".to_string())
                        .spawn(move || repl_acceptor_loop(repl_listener, &shared, &handlers))
                        .expect("spawn repl acceptor"),
                );
            }
            if repl.config().standby_of.is_some() {
                let shared = Arc::clone(&shared);
                repl_threads.push(
                    std::thread::Builder::new()
                        .name("ref-serve-standby".to_string())
                        .spawn(move || standby_loop(&shared))
                        .expect("spawn standby puller"),
                );
            }
        }

        Ok(Server {
            addr,
            repl_addr,
            shared,
            config,
            acceptor: Some(acceptor),
            ticker: Some(ticker),
            readers,
            repl_threads,
            repl_handlers,
        })
    }

    /// The bound address (connect clients here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound replication listener address, when replication is
    /// configured (point standbys here).
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_addr
    }

    /// The node's current replication role (`Primary` for an
    /// unreplicated server).
    pub fn role(&self) -> Role {
        self.shared
            .repl
            .as_ref()
            .map_or(Role::Primary, |repl| repl.role())
    }

    /// The node's current replication term (0 when unreplicated).
    pub fn term(&self) -> u64 {
        self.shared.repl.as_ref().map_or(0, |repl| repl.term())
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Point-in-time server counters.
    pub fn metrics(&self) -> ServeMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Current bus depth (queued, un-drained requests).
    pub fn queue_depth(&self) -> usize {
        self.shared.bus.depth()
    }

    /// Gracefully stops the server: drains every admitted request, runs
    /// no further epochs, flushes a final snapshot, joins all threads.
    pub fn shutdown(self) -> ShutdownReport {
        // Closing the bus is the drain signal: unlike a synthetic
        // shutdown item, it cannot be bounced by a full control quota,
        // and it is a no-op if a wire shutdown already closed the bus.
        self.shared.bus.close();
        self.collect()
    }

    /// Blocks until a wire `shutdown` request drains the server, then
    /// joins the transport threads and returns the report. Unlike
    /// [`Server::shutdown`], this does not stop the server itself.
    pub fn wait(mut self) -> ShutdownReport {
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
        self.collect()
    }

    fn collect(mut self) -> ShutdownReport {
        self.join_threads();
        let core = self
            .shared
            .retired
            .lock()
            .expect("retired lock poisoned")
            .take()
            .expect("ticker always retires the core");
        ShutdownReport {
            snapshot: core.final_snapshot(),
            journal: core.journal().to_vec(),
            journal_overflowed: core.journal_overflowed(),
            metrics: self.shared.metrics.snapshot(),
            market_metrics_json: core.engine().metrics().to_json(),
        }
    }

    fn join_threads(&mut self) {
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.readers.lock().expect("readers lock poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
        for handle in std::mem::take(&mut self.repl_threads) {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .repl_handlers
                .lock()
                .expect("repl handlers lock poisoned"),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.ticker.is_some() || self.acceptor.is_some() {
            self.shared.bus.close();
            self.join_threads();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    readers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    config: &ServeConfig,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        reap_finished_readers(readers);
        match listener.accept() {
            Ok((stream, _)) => {
                ServeMetrics::bump(&shared.metrics.connections);
                if shared.open_connections.load(Ordering::SeqCst) >= config.max_connections {
                    ServeMetrics::bump(&shared.metrics.rejected_overload);
                    let mut stream = stream;
                    let _ = writeln!(
                        stream,
                        "{}",
                        error_response(
                            "overloaded",
                            Some("connection limit reached"),
                            Some(config.retry_after_ms),
                        )
                    );
                    continue;
                }
                shared.open_connections.fetch_add(1, Ordering::SeqCst);
                let shared = Arc::clone(shared);
                let config = config.clone();
                let handle = std::thread::Builder::new()
                    .name("ref-serve-conn".to_string())
                    .spawn(move || {
                        // The slot guard releases the connection count even
                        // if the reader panics, and the panic is contained
                        // here: a poisoned connection dies alone.
                        let _slot = ConnectionSlot(Arc::clone(&shared));
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            reader_loop(stream, &shared, &config);
                        }));
                        if outcome.is_err() {
                            ServeMetrics::bump(&shared.metrics.reader_panics);
                        }
                    })
                    .expect("spawn reader");
                readers.lock().expect("readers lock poisoned").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Releases one open-connection slot when a reader thread exits — by
/// return *or* by panic — so a poisoned connection cannot leak its slot
/// and slowly strangle the accept limit.
struct ConnectionSlot(Arc<Shared>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.open_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Joins and discards handles of reader threads that have already
/// exited, so the registry stays bounded by *open* connections rather
/// than growing with every connection ever accepted.
fn reap_finished_readers(readers: &Mutex<Vec<JoinHandle<()>>>) {
    let mut handles = readers.lock().expect("readers lock poisoned");
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            // Joining a finished thread returns immediately.
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<Shared>, config: &ServeConfig) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` appends, so bytes delivered before a read timeout
        // stay in `line` and the next pass resumes the same line; `line`
        // is only cleared once a complete line has been processed.
        match reader.read_line(&mut line) {
            Ok(0) => {
                // EOF; a final unterminated line is still one request.
                if !line.trim().is_empty() {
                    let response = dispatch(&line, shared, config);
                    let _ = writeln!(writer, "{response}");
                    let _ = writer.flush();
                }
                return;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        let response = dispatch(&line, shared, config);
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            return;
        }
        line.clear();
    }
}

/// Parses, admits and awaits one request line; always produces a response.
fn dispatch(line: &str, shared: &Arc<Shared>, config: &ServeConfig) -> Value {
    if config.faults.is_armed() {
        if let Some(token) = &config.faults.panic_on_line_token {
            if line.contains(token.as_str()) {
                panic!("injected reader panic on line containing {token:?}");
            }
        }
    }
    let envelope = match parse_request(line) {
        Ok(envelope) => envelope,
        Err(detail) => {
            ServeMetrics::bump(&shared.metrics.protocol_errors);
            return error_response("protocol", Some(&detail), None);
        }
    };
    if matches!(envelope.request, Request::Ping) {
        // Answered right here on the reader thread from ticker-exported
        // atomics: liveness probes must work even when the bus is full
        // or the ticker is busy — that is exactly when you probe.
        ServeMetrics::bump(&shared.metrics.accepted);
        return ping_response(shared);
    }
    let class = envelope.request.class();
    let deadline = envelope
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let (tx, rx) = mpsc::channel();
    let item = Item::Client {
        request: envelope.request,
        deadline,
        reply: tx,
    };
    match shared.bus.try_send(class, item) {
        Ok(()) => {
            ServeMetrics::bump(&shared.metrics.accepted);
            let wait = envelope
                .deadline_ms
                .map(|ms| Duration::from_millis(ms) + config.reply_timeout)
                .unwrap_or(config.reply_timeout);
            match rx.recv_timeout(wait) {
                Ok(response) => response,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    error_response("timeout", Some("no reply from the epoch loop"), None)
                }
                // The ticker dropped the reply sender without answering —
                // it panicked mid-batch. The supervisor restarts it in
                // degraded mode; this request is the one casualty.
                Err(mpsc::RecvTimeoutError::Disconnected) => error_response(
                    "internal",
                    Some("request dropped by a ticker failure"),
                    None,
                ),
            }
        }
        Err(SendError::Full(_)) => {
            ServeMetrics::bump(&shared.metrics.rejected_overload);
            error_response("overloaded", None, Some(config.retry_after_ms))
        }
        Err(SendError::Closed) => {
            ServeMetrics::bump(&shared.metrics.rejected_shutdown);
            error_response("shutting_down", None, None)
        }
    }
}

/// Answers a `ping` from transport-visible state alone (no engine
/// access): role, term, progress, and uptime.
fn ping_response(shared: &Arc<Shared>) -> Value {
    let mut fields = Vec::new();
    match shared.repl.as_ref() {
        Some(repl) => {
            fields.push(("role", Value::str(repl.role().as_str())));
            fields.push(("term", Value::from_u64(repl.term())));
            if let Some(leader) = repl.leader_client() {
                fields.push(("leader", Value::str(leader)));
            }
            fields.push(("standbys", Value::from_u64(repl.standby_count())));
        }
        None => {
            fields.push(("role", Value::str("primary")));
            fields.push(("term", Value::from_u64(0)));
        }
    }
    fields.push((
        "epoch",
        Value::from_u64(shared.epoch.load(Ordering::SeqCst)),
    ));
    fields.push((
        "wal_seq",
        Value::from_u64(shared.wal_seq.load(Ordering::SeqCst)),
    ));
    fields.push((
        "uptime_ms",
        Value::from_u64(
            shared
                .started
                .elapsed()
                .as_millis()
                .min(u128::from(u64::MAX)) as u64,
        ),
    ));
    ok_response(fields)
}

/// Mutable ticker state kept *outside* the supervised pass, so a caught
/// panic loses at most the request being handled: drain progress and
/// pending shutdown replies survive into the next pass.
struct TickerState {
    next_tick: Option<Instant>,
    /// Next heartbeat due on the replication stream (primaries only).
    next_hb: Option<Instant>,
    shutdown_replies: Vec<mpsc::Sender<Value>>,
    draining: bool,
    degraded: bool,
}

fn ticker_loop(core: ServiceCore, shared: &Arc<Shared>, config: &ServeConfig) {
    // Held in an Option so the retiring pass can move the core into the
    // shared slot; `Some` until the pass that returns `true`.
    let mut core = Some(core);
    let mut state = TickerState {
        next_tick: config.epoch_interval.map(|i| Instant::now() + i),
        // A replicated node that boots as the primary heartbeats from
        // the first pass; a standby starts heartbeating on promotion.
        next_hb: config
            .repl
            .as_ref()
            .filter(|r| r.standby_of.is_none())
            .map(|_| Instant::now()),
        shutdown_replies: Vec::new(),
        draining: false,
        degraded: false,
    };
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            ticker_pass(&mut core, &mut state, shared, config)
        }));
        match outcome {
            Ok(true) => return,
            Ok(false) => {}
            Err(_) => {
                // Fail fast into degraded mode. The engine may have
                // missed an event the WAL already holds, so mutations
                // are refused from here on — the durable log, not this
                // process, is the source of truth — but reads keep
                // serving the pre-panic state and shutdown still drains.
                ServeMetrics::bump(&shared.metrics.ticker_panics);
                shared.metrics.degraded.store(1, Ordering::Relaxed);
                state.degraded = true;
            }
        }
    }
}

/// One supervised pass of the ticker: park, drain, serve, maybe run a
/// timed epoch. Returns `true` once the core is retired (exit signal).
fn ticker_pass(
    slot: &mut Option<ServiceCore>,
    state: &mut TickerState,
    shared: &Arc<Shared>,
    config: &ServeConfig,
) -> bool {
    let core = slot.as_mut().expect("core retired but ticker re-entered");
    if !state.draining {
        let mut park = match state.next_tick {
            Some(at) => at.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        if let Some(at) = state.next_hb {
            park = park.min(at.saturating_duration_since(Instant::now()));
        }
        if !park.is_zero() {
            shared.bus.wait(park);
        }
    }

    let batch = shared.bus.drain();
    shared.metrics.observe_depth(batch.len() as u64);
    for (_, item) in batch {
        let (request, deadline, reply) = match item {
            Item::Client {
                request,
                deadline,
                reply,
            } => (request, deadline, reply),
            Item::Repl(command) => {
                handle_repl_command(core, command, state, shared, config);
                continue;
            }
        };
        if let Some(deadline) = deadline {
            if Instant::now() > deadline {
                ServeMetrics::bump(&shared.metrics.rejected_deadline);
                let _ = reply.send(error_response(
                    "deadline",
                    Some("expired while queued"),
                    None,
                ));
                continue;
            }
        }
        if matches!(request, Request::Shutdown) {
            if !state.draining {
                state.draining = true;
                // Stop admitting; everything already on the bus is
                // still served below.
                shared.bus.close();
            }
            state.shutdown_replies.push(reply);
            continue;
        }
        if matches!(request, Request::Promote) {
            let _ = reply.send(handle_promote(state, shared, config));
            continue;
        }
        if request.to_event().is_some() {
            // Role gate: only a primary mutates. Standbys redirect the
            // client to the leader; a fenced node refuses outright.
            if let Some(repl) = shared.repl.as_ref() {
                match repl.role() {
                    Role::Primary => {}
                    Role::Standby => {
                        let leader = repl.leader_client();
                        let _ = reply.send(not_primary_response(leader.as_deref()));
                        continue;
                    }
                    Role::Fenced => {
                        let _ = reply.send(error_response(
                            "fenced",
                            Some("this node was deposed or diverged; it refuses mutations"),
                            None,
                        ));
                        continue;
                    }
                }
            }
            if state.degraded {
                let _ = reply.send(error_response(
                    "degraded",
                    Some("ticker failed; mutations refused, reads still served"),
                    None,
                ));
                continue;
            }
        }
        let response = core.handle(&request, &shared.metrics);
        let _ = reply.send(response);
    }

    // Export progress for the reader-thread ping path, and refresh the
    // durability/replication gauges, every pass.
    shared.epoch.store(core.engine().epoch(), Ordering::SeqCst);
    shared
        .wal_seq
        .store(core.events_applied(), Ordering::SeqCst);
    if let Some(wal) = core.wal() {
        shared
            .metrics
            .wal_segments
            .store(wal.segment_count() as u64, Ordering::Relaxed);
        shared
            .metrics
            .wal_bytes
            .store(wal.total_bytes(), Ordering::Relaxed);
        shared
            .metrics
            .checkpoint_bytes
            .store(wal.checkpoint_bytes(), Ordering::Relaxed);
    }
    if let Some(repl) = shared.repl.as_ref() {
        shared
            .metrics
            .standby_connected
            .store(repl.standby_count(), Ordering::Relaxed);
        if repl.role() == Role::Primary {
            shared
                .metrics
                .repl_lag_records
                .store(repl.lag_records(core.events_applied()), Ordering::Relaxed);
        }
    }

    // Bus closure ([`Server::shutdown`] or Drop) is a drain signal
    // too: nothing further can be admitted, so serve what is queued,
    // retire the core, and exit rather than spin forever.
    if !state.draining && shared.bus.is_closed() {
        state.draining = true;
    }

    if state.draining {
        // One more race-free drain: items admitted between our drain
        // and the close are served, not dropped.
        if shared.bus.depth() > 0 {
            return false;
        }
        let snapshot = core.final_snapshot();
        for reply in state.shutdown_replies.drain(..) {
            let _ = reply.send(ok_response(vec![
                ("snapshot", Value::str(snapshot.clone())),
                ("server", shared.metrics.snapshot().to_json_value()),
            ]));
        }
        shared.stop.store(true, Ordering::SeqCst);
        *shared.retired.lock().expect("retired lock poisoned") = slot.take();
        return true;
    }

    if let Some(repl) = shared.repl.as_ref() {
        if repl.role() == Role::Primary {
            let now = Instant::now();
            if state.next_hb.is_none_or(|at| now >= at) {
                repl.publish_heartbeat(repl.term(), core.events_applied());
                state.next_hb = Some(now + repl.config().heartbeat_interval);
            }
        }
    }

    if let (Some(interval), Some(at)) = (config.epoch_interval, state.next_tick) {
        if Instant::now() >= at {
            // A degraded ticker stops advancing epochs: the engine is
            // behind its log, and piling ticks on top would widen the
            // divergence recovery has to repair. A standby does not run
            // its own clock either — its epochs arrive on the stream.
            let is_primary = shared
                .repl
                .as_ref()
                .is_none_or(|repl| repl.role() == Role::Primary);
            if !state.degraded && is_primary {
                let _ = core.handle(&Request::Tick, &shared.metrics);
            }
            state.next_tick = Some(Instant::now() + interval);
        }
    }
    false
}

/// Performs a standby→primary promotion inside the ticker (so role
/// flips are serialized with event application): bump the term, flip
/// the role, restart timed epochs and heartbeats, and best-effort
/// depose the old primary by presenting it the new term.
fn handle_promote(state: &mut TickerState, shared: &Arc<Shared>, config: &ServeConfig) -> Value {
    let Some(repl) = shared.repl.as_ref() else {
        return error_response("protocol", Some("replication is not configured"), None);
    };
    match repl.role() {
        Role::Fenced => error_response(
            "fenced",
            Some("this node was deposed or diverged; it cannot be promoted"),
            None,
        ),
        // Idempotent: promoting a primary reports its standing.
        Role::Primary => ok_response(vec![
            ("role", Value::str("primary")),
            ("term", Value::from_u64(repl.term())),
        ]),
        Role::Standby => {
            let (term, old_leader) = repl.promote(&shared.metrics);
            state.next_tick = config.epoch_interval.map(|i| Instant::now() + i);
            state.next_hb = Some(Instant::now());
            if let Some(addr) = old_leader {
                // Detached: never block the ticker on a dead peer's TCP
                // timeout.
                let _ = std::thread::Builder::new()
                    .name("ref-serve-fence".to_string())
                    .spawn(move || fence_notify(addr, term));
            }
            ok_response(vec![
                ("role", Value::str("primary")),
                ("term", Value::from_u64(term)),
            ])
        }
    }
}

/// Applies one replication-stream command on the ticker thread.
fn handle_repl_command(
    core: &mut ServiceCore,
    command: ReplCommand,
    state: &mut TickerState,
    shared: &Arc<Shared>,
    config: &ServeConfig,
) {
    let Some(repl) = shared.repl.as_ref() else {
        return;
    };
    // A degraded ticker must not keep applying the stream: the engine
    // already missed an event its WAL holds.
    if state.degraded {
        return;
    }
    match command {
        ReplCommand::AutoPromote => {
            if repl.role() == Role::Standby {
                let _ = handle_promote(state, shared, config);
            }
        }
        ReplCommand::Restore { seq, snapshot } => {
            if repl.role() != Role::Standby {
                return;
            }
            match core.restore_from_snapshot(seq, &snapshot) {
                Ok(()) => repl.send_ack(core.events_applied(), None),
                Err(_) => {
                    ServeMetrics::bump(&shared.metrics.wal_errors);
                    repl.request_resync();
                }
            }
        }
        ReplCommand::Apply { seq, event } => {
            if repl.role() != Role::Standby {
                return;
            }
            match core.apply_repl(seq, event, &shared.metrics) {
                ReplApply::Applied { epoch_fp } => repl.send_ack(core.events_applied(), epoch_fp),
                ReplApply::Skipped => repl.send_ack(core.events_applied(), None),
                // A hole or a failed append cannot be repaired
                // in-stream: reconnect and catch up from the log.
                ReplApply::Gap | ReplApply::WalError => repl.request_resync(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use ref_core::resource::Capacity;

    fn tick_on_demand_config() -> ServeConfig {
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        ServeConfig::new(market).with_epoch_interval(None)
    }

    #[test]
    fn server_round_trips_a_basic_session() {
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.6, 0.4]).unwrap();
        client.join_truth(2, 1.0, &[0.2, 0.8]).unwrap();
        for _ in 0..20 {
            client.tick().unwrap();
        }
        let reply = client.query_agent(1).unwrap();
        let bundle = reply.get("bundle").unwrap().as_array().unwrap();
        assert!((bundle[0].as_f64().unwrap() - 18.0).abs() < 0.6, "{reply}");
        client.leave(2).unwrap();
        let report = server.shutdown();
        assert_eq!(report.metrics.protocol_errors, 0);
        assert!(report.snapshot.starts_with("refmarket-snapshot"));
        // join, join, 20 ticks, query is not journaled, leave.
        assert_eq!(report.journal.len(), 23);
    }

    #[test]
    fn malformed_lines_get_protocol_errors_and_do_not_kill_the_connection() {
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = client.call_line("this is not json").unwrap();
        assert_eq!(reply.get("error").and_then(Value::as_str), Some("protocol"));
        let reply = client.call_line(r#"{"op":"warp"}"#).unwrap();
        assert_eq!(reply.get("error").and_then(Value::as_str), Some("protocol"));
        // The connection still works.
        client.join_external(9).unwrap();
        let report = server.shutdown();
        assert_eq!(report.metrics.protocol_errors, 2);
        assert_eq!(report.journal.len(), 1);
    }

    #[test]
    fn wire_shutdown_returns_final_snapshot_and_bounces_stragglers() {
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        a.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
        a.tick().unwrap();
        let reply = b.shutdown().unwrap();
        let snapshot = reply.get("snapshot").unwrap().as_str().unwrap();
        assert!(snapshot.starts_with("refmarket-snapshot"));
        // Post-shutdown requests are refused at admission.
        let late = a.call_line(r#"{"op":"tick"}"#).unwrap();
        assert_eq!(
            late.get("error").and_then(Value::as_str),
            Some("shutting_down")
        );
        let report = server.wait();
        assert_eq!(report.metrics.rejected_shutdown, 1);
        assert_eq!(report.snapshot, snapshot);
    }

    #[test]
    fn wait_blocks_until_a_wire_shutdown_not_before() {
        // Regression: `wait` must passively await a wire shutdown, not
        // inject a synthetic one and drain the server out from under
        // its clients.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let addr = server.addr();
        let driver = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
            client.tick().unwrap();
            client.shutdown().unwrap();
        });
        let report = server.wait();
        driver.join().unwrap();
        // Had wait() shut the server down itself, the driver's requests
        // would have bounced with `shutting_down` and panicked above.
        assert_eq!(report.journal.len(), 2);
    }

    #[test]
    fn expired_deadlines_are_dropped_in_queue() {
        // No epoch timer and a tick that takes long enough to let the
        // queued request expire: enforce with a tiny deadline.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
        // Deadline 0 ms: expired by the time the ticker sees it.
        let reply = client
            .call_line(r#"{"op":"query","deadline_ms":0}"#)
            .unwrap();
        assert_eq!(reply.get("error").and_then(Value::as_str), Some("deadline"));
        let report = server.shutdown();
        assert_eq!(report.metrics.rejected_deadline, 1);
    }

    #[test]
    fn dropping_a_running_server_does_not_hang() {
        // Regression: Drop closes the bus; the ticker must treat the
        // closure itself as the drain signal and exit, not wait for a
        // Shutdown item that can no longer be admitted.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.5, 0.5]).unwrap();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            drop(server);
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("Drop deadlocked: the ticker never exited on bus closure");
    }

    #[test]
    fn shutdown_succeeds_even_with_a_zero_control_quota() {
        // Regression: shutdown() used a synthetic Shutdown item that a
        // full (here: zero) control quota could bounce, leaving collect()
        // joining a ticker that never drained.
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let config = ServeConfig::new(market)
            .with_epoch_interval(None)
            .with_quotas(Quotas {
                control: 0,
                observe: 1,
                query: 1,
            });
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let report = server.shutdown();
            let _ = tx.send(report);
        });
        let report = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("shutdown hung with an exhausted control quota");
        assert!(report.snapshot.starts_with("refmarket-snapshot"));
    }

    #[test]
    fn fragmented_request_lines_survive_read_timeouts() {
        // Regression: a writer that pauses mid-line (longer than the
        // reader's 50ms poll timeout) must not have the partial prefix
        // discarded and the suffix parsed as its own request.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let line = r#"{"op":"tick"}"#;
        let (head, tail) = line.split_at(6);
        stream.write_all(head.as_bytes()).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(300));
        stream.write_all(tail.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let reply = Value::parse(reply.trim_end()).unwrap();
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)), "{reply}");
        let report = server.shutdown();
        assert_eq!(report.metrics.protocol_errors, 0);
        assert_eq!(report.metrics.epochs, 1);
    }

    #[test]
    fn finished_reader_handles_are_reaped_while_running() {
        // Regression: the reader registry must not grow with every
        // connection ever accepted — closed connections are reaped by
        // the acceptor, not hoarded until shutdown.
        let server = Server::start("127.0.0.1:0", tick_on_demand_config()).unwrap();
        for agent in 0..4 {
            let mut client = Client::connect(server.addr()).unwrap();
            client.join_external(agent).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let live = server.readers.lock().unwrap().len();
            if live == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{live} finished reader handles were never reaped"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let report = server.shutdown();
        assert_eq!(report.journal.len(), 4);
    }

    #[test]
    fn timed_epochs_advance_without_tick_requests() {
        let market = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let config = ServeConfig::new(market).with_epoch_interval(Some(Duration::from_millis(1)));
        let server = Server::start("127.0.0.1:0", config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.join_truth(1, 1.0, &[0.6, 0.4]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let reply = client.query().unwrap();
            if reply.get("epoch").unwrap().as_u64().unwrap() >= 5 {
                break;
            }
            assert!(Instant::now() < deadline, "timed epochs never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = server.shutdown();
        assert!(report.metrics.epochs >= 5);
        assert!(report.metrics.epoch_latency.count >= 5);
    }
}
