//! Sharding primitives: the seeded consistent-hash ring that assigns
//! agents to market shards, and the cross-shard capacity coordinator.
//!
//! A sharded server (see [`crate::ServeConfig::with_shards`]) partitions
//! the agent population across N independent [`crate::ServiceCore`]s,
//! each with its own ticker thread, bounded bus, and WAL directory. Two
//! pieces of pure, deterministic logic live here:
//!
//! - [`HashRing`]: placement. Agent ids map to shards through a seeded
//!   consistent-hash ring, so placement is a pure function of
//!   `(ring_seed, shard_count, agent_id)` — identical across processes,
//!   restarts, and replicas, and minimally disturbed when the shard
//!   count changes (growing from `k` to `k+1` shards remaps only
//!   ~`1/(k+1)` of the ids).
//! - [`Coordinator`]: fairness across shards. Each shard allocates its
//!   own capacity *allotment* to its own agents; after every epoch the
//!   coordinator compares per-shard aggregate demand and moves capacity
//!   between allotments with a damped proportional-share update in the
//!   style of Bonald & Roberts' decentralized multi-resource fairness
//!   algorithms. The update is delivered to each shard as a journaled
//!   [`ref_market::MarketEvent::CapacityRealloted`] event, so a shard's
//!   WAL remains a complete, byte-for-byte replayable history no matter
//!   what the coordinator did. The residual distance between the current
//!   allotments and the instantaneous fair targets is the *temporal
//!   drift*, audited against a bound alongside the per-shard SI/EF/PE
//!   checks.

use ref_core::resource::Capacity;
use ref_market::{AgentId, MarketConfig};

/// Virtual nodes per shard on the ring. More vnodes smooth the key
/// distribution and shrink remap variance at a small lookup cost.
const VNODES: u64 = 256;

/// Damping gain of the coordination update: each round moves allotments
/// this fraction of the way toward the instantaneous fair targets.
/// Under static demand the drift halves every round; under changing
/// demand it tracks with bounded lag.
const COORD_GAIN: f64 = 0.5;

/// Smoothing mass added to every shard's demand before computing
/// proportional targets, as a fraction of the mean demand. Keeps an
/// empty shard's allotment from collapsing (it must be able to admit
/// agents and serve them immediately) and the targets well-defined when
/// no shard reports demand.
const COORD_SMOOTHING: f64 = 0.05;

/// No shard's allotment may fall below this fraction of its equal-split
/// share, so every shard's market keeps a strictly positive capacity.
const COORD_FLOOR: f64 = 0.1;

/// Allotment changes smaller than this fraction of the total capacity
/// (per resource) are not delivered to the shard — they would add
/// journal noise without materially moving the allocation.
const REALLOT_EPSILON: f64 = 1e-4;

/// Coordination rounds before the drift audit arms, mirroring the
/// market's own warmup: the first rounds after boot or churn are
/// expected to be far from the fair point.
pub const COORD_WARMUP_ROUNDS: u64 = 8;

/// Router-observed health of one shard's ticker.
///
/// Driven entirely from the routing tier (no shard cooperation needed):
/// tick replies within budget are *clean*, tick timeouts are *misses*,
/// and a `internal`/`degraded` reply or the shard's own degraded gauge
/// is an immediate failure. The lifecycle is
///
/// ```text
///            miss            2nd consecutive miss,
///  Healthy ───────▶ Suspect ─────────────────────▶ Down
///     ▲                │  ▲   panic / internal       │
///     │   M clean      │  └──────── restart ─────────┘
///     └────ticks───────┘          (supervisor)
/// ```
///
/// A Down shard is skipped by fan-outs and answered `shard_unavailable`
/// at dispatch; the supervisor probes it (or restarts its ticker from
/// the WAL) and re-enters it at Suspect, which must then earn Healthy
/// back with M consecutive clean ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Replying to ticks within budget.
    Healthy = 0,
    /// Missed a tick (or is freshly restarted); serving, but on watch.
    Suspect = 1,
    /// Not answering: fan-outs skip it, dispatch fails fast.
    Down = 2,
}

impl ShardHealth {
    /// Stable lowercase label, used in `ping` replies.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Down => "down",
        }
    }

    /// Decodes the atomic-stored representation (unknown values read as
    /// Down — fail safe).
    pub fn from_u64(raw: u64) -> ShardHealth {
        match raw {
            0 => ShardHealth::Healthy,
            1 => ShardHealth::Suspect,
            _ => ShardHealth::Down,
        }
    }
}

/// The default coordination quorum for `shards` shards: ⌈(N+1)/2⌉, a
/// strict majority that also rounds up on even fleets (4 shards → 3),
/// so a split 2/2 fleet never reallots capacity on half a picture.
pub fn default_quorum(shards: usize) -> usize {
    (shards + 1).div_ceil(2)
}

/// `splitmix64`: a full-avalanche 64-bit mixer. Pure arithmetic — no
/// process state — so ring placement is identical everywhere.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded consistent-hash ring mapping agent ids to shards.
///
/// Each shard contributes [`VNODES`] points to a 64-bit ring; an agent
/// id hashes to a ring position and is owned by the first point at or
/// after it (wrapping). Construction and lookup are pure functions of
/// the seed, so every process that agrees on `(seed, shards)` agrees on
/// placement.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(ring position, shard)` points.
    points: Vec<(u64, u32)>,
    shards: usize,
    seed: u64,
}

impl HashRing {
    /// Builds the ring for `shards` shards (at least 1) from `seed`.
    pub fn new(shards: usize, seed: u64) -> HashRing {
        assert!(shards >= 1, "a ring needs at least one shard");
        // Domain-separate the vnode point stream from the agent key
        // stream: without the tag, agent id `a < shards * VNODES` hashes
        // exactly onto a vnode point (`seed ^ mix64(a)` collides with
        // `seed ^ mix64(shard * VNODES + vnode)`), pinning every small
        // id to shard `a / VNODES` independent of the seed.
        let point_seed = mix64(seed ^ 0x9D39_247E_3377_6D41);
        let mut points = Vec::with_capacity(shards * VNODES as usize);
        for shard in 0..shards as u64 {
            for vnode in 0..VNODES {
                // Hash the (shard, vnode) pair under the tagged seed.
                // The vnode stream of a shard is independent of the
                // total shard count, which is what makes resizes
                // minimally disruptive: old shards keep their points.
                let h = mix64(point_seed ^ mix64(shard.wrapping_mul(VNODES).wrapping_add(vnode)));
                points.push((h, shard as u32));
            }
        }
        // Sort by position; break (astronomically unlikely) position
        // ties by shard so the order is still fully deterministic.
        points.sort_unstable();
        HashRing {
            points,
            shards,
            seed,
        }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The seed the ring was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning `agent`. Total: every id maps to exactly one
    /// shard.
    pub fn shard_of(&self, agent: AgentId) -> usize {
        let h = mix64(self.seed ^ mix64(agent));
        let idx = self.points.partition_point(|&(pos, _)| pos < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard as usize
    }
}

/// The market configuration one shard of an `n`-shard deployment boots
/// with: the base configuration with every resource capacity split
/// equally. The coordinator reallots capacity between shards from this
/// starting point at runtime; replay and recovery always start from the
/// equal split and reapply the journaled reallotments.
pub fn shard_market_config(base: &MarketConfig, shards: usize) -> MarketConfig {
    let mut config = base.clone();
    let split: Vec<f64> = config
        .capacity
        .as_slice()
        .iter()
        .map(|c| c / shards as f64)
        .collect();
    config.capacity = Capacity::new(split).expect("an equal split of a valid capacity is valid");
    config
}

/// Cross-shard capacity coordinator: a damped decentralized
/// proportional-share update over per-shard aggregate demand.
///
/// Every round (one fleet-wide epoch), each shard reports its aggregate
/// demand vector (per-resource sum of its agents' reported
/// elasticities). The coordinator computes each shard's instantaneous
/// fair *target* — capacity proportional to smoothed demand — and moves
/// the live allotments a fixed fraction ([`COORD_GAIN`]) of the way
/// there, floored and renormalized so the allotments always sum to the
/// cluster capacity and stay strictly positive. The worst per-resource
/// distance between allotment and target, as a fraction of total
/// capacity, is the round's *temporal drift*; after
/// [`COORD_WARMUP_ROUNDS`] it must stay within the configured bound.
#[derive(Debug, Clone)]
pub struct Coordinator {
    /// Cluster-wide capacity per resource (the sum of all allotments).
    total: Vec<f64>,
    /// Current per-shard allotments, `allotments[shard][resource]`.
    /// These always sum (per resource) to `total` exactly.
    allotments: Vec<Vec<f64>>,
    /// The allotment each shard was last *delivered*. Deliveries are
    /// epsilon-thresholded to keep journals quiet near the fixed point,
    /// so a shard's live capacity may lag `allotments` by less than
    /// [`REALLOT_EPSILON`] of the total per resource.
    delivered: Vec<Vec<f64>>,
    rounds: u64,
    drift: f64,
    max_drift_after_warmup: f64,
    drift_bound: f64,
}

/// Point-in-time view of the coordinator, for audits and benches.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinationStatus {
    /// Coordination rounds executed.
    pub rounds: u64,
    /// Drift of the latest round.
    pub drift: f64,
    /// Worst drift seen after the warmup rounds.
    pub max_drift_after_warmup: f64,
    /// The configured drift bound.
    pub drift_bound: f64,
    /// Whether the post-warmup drift has stayed within the bound.
    pub within_bound: bool,
}

impl Coordinator {
    /// A coordinator for `shards` shards splitting `total` capacity,
    /// starting from the equal split (matching
    /// [`shard_market_config`]).
    pub fn new(total: Vec<f64>, shards: usize, drift_bound: f64) -> Coordinator {
        assert!(shards >= 1, "coordination needs at least one shard");
        let split: Vec<f64> = total.iter().map(|c| c / shards as f64).collect();
        Coordinator {
            total,
            allotments: vec![split.clone(); shards],
            delivered: vec![split; shards],
            rounds: 0,
            drift: 0.0,
            max_drift_after_warmup: 0.0,
            drift_bound,
        }
    }

    /// Runs one coordination round over the shards' demand vectors.
    ///
    /// Returns, per shard, the new allotment to deliver — `None` when
    /// the shard's allotment moved less than [`REALLOT_EPSILON`] of the
    /// total on every resource and no event needs to be journaled.
    pub fn step(&mut self, demands: &[Vec<f64>]) -> Vec<Option<Vec<f64>>> {
        let n = self.allotments.len();
        assert_eq!(demands.len(), n, "one demand vector per shard");
        let resources = self.total.len();
        let mut next = self.allotments.clone();
        let mut drift: f64 = 0.0;
        // `r` indexes four parallel structures (total, demands, targets,
        // next) — an iterator form over any one of them reads worse.
        #[allow(clippy::needless_range_loop)]
        for r in 0..resources {
            let total = self.total[r];
            let sum_demand: f64 = demands
                .iter()
                .map(|d| d.get(r).copied().unwrap_or(0.0))
                .sum();
            let kappa = COORD_SMOOTHING * (sum_demand + 1.0) / n as f64;
            let weights: Vec<f64> = demands
                .iter()
                .map(|d| d.get(r).copied().unwrap_or(0.0) + kappa)
                .collect();
            let floor = total * COORD_FLOOR / n as f64;
            // Feasible fair targets: proportional to smoothed demand,
            // floored, with the floored mass redistributed over the
            // remaining shards (water-filling). Both the current
            // allotments and the targets are feasible points (each
            // component >= floor, summing to the total), so the damped
            // convex step below stays feasible without re-clamping.
            let mut fixed = vec![false; n];
            let mut targets = vec![0.0; n];
            loop {
                let fixed_count = fixed.iter().filter(|&&f| f).count();
                let avail = total - floor * fixed_count as f64;
                let free_weight: f64 = (0..n).filter(|&s| !fixed[s]).map(|s| weights[s]).sum();
                let mut changed = false;
                for s in 0..n {
                    targets[s] = if fixed[s] {
                        floor
                    } else {
                        let t = avail * weights[s] / free_weight;
                        if t < floor {
                            fixed[s] = true;
                            changed = true;
                            floor
                        } else {
                            t
                        }
                    };
                }
                if !changed {
                    break;
                }
            }
            for s in 0..n {
                let a = self.allotments[s][r];
                next[s][r] = a + COORD_GAIN * (targets[s] - a);
            }
            // Renormalize away floating-point dust so the per-resource
            // sum stays exactly the cluster total.
            let sum_next: f64 = (0..n).map(|s| next[s][r]).sum();
            let scale = total / sum_next;
            for s in 0..n {
                next[s][r] *= scale;
                drift = drift.max((next[s][r] - targets[s]).abs() / total);
            }
        }
        self.rounds += 1;
        self.drift = drift;
        if self.rounds > COORD_WARMUP_ROUNDS {
            self.max_drift_after_warmup = self.max_drift_after_warmup.max(drift);
        }
        self.allotments = next;
        let mut updates = Vec::with_capacity(n);
        for s in 0..n {
            let moved = (0..resources).any(|r| {
                (self.allotments[s][r] - self.delivered[s][r]).abs()
                    > REALLOT_EPSILON * self.total[r]
            });
            if moved {
                self.delivered[s] = self.allotments[s].clone();
                updates.push(Some(self.allotments[s].clone()));
            } else {
                updates.push(None);
            }
        }
        updates
    }

    /// The current per-shard allotments.
    pub fn allotments(&self) -> &[Vec<f64>] {
        &self.allotments
    }

    /// Records that `shard` did *not* receive the allotment a step
    /// returned for it (it was Down when the router went to deliver):
    /// the next step unconditionally returns an update for the shard,
    /// so a recovering shard is offered its current allotment again
    /// instead of silently drifting on a stale capacity split.
    pub fn mark_undelivered(&mut self, shard: usize) {
        for slot in &mut self.delivered[shard] {
            *slot = f64::INFINITY;
        }
    }

    /// The allotment to replay onto a freshly recovered `shard`, marked
    /// delivered: WAL recovery restored the shard to the last allotment
    /// it *journaled*, which may predate reallotments issued while it
    /// was Down — the supervisor pushes this as one catch-up `reallot`.
    pub fn resync_delivery(&mut self, shard: usize) -> Vec<f64> {
        self.delivered[shard] = self.allotments[shard].clone();
        self.allotments[shard].clone()
    }

    /// Snapshot of the coordination audit state.
    pub fn status(&self) -> CoordinationStatus {
        CoordinationStatus {
            rounds: self.rounds,
            drift: self.drift,
            max_drift_after_warmup: self.max_drift_after_warmup,
            drift_bound: self.drift_bound,
            within_bound: self.max_drift_after_warmup <= self.drift_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = HashRing::new(4, 0x5EED);
        let b = HashRing::new(4, 0x5EED);
        for agent in 0..1000u64 {
            let s = a.shard_of(agent);
            assert!(s < 4);
            assert_eq!(s, b.shard_of(agent));
        }
        // A different seed produces a genuinely different placement.
        let c = HashRing::new(4, 0x5EED + 1);
        let moved = (0..1000u64)
            .filter(|&x| a.shard_of(x) != c.shard_of(x))
            .count();
        assert!(moved > 500, "reseeding moved only {moved}/1000 keys");
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let ring = HashRing::new(4, 7);
        let mut counts = [0usize; 4];
        for agent in 0..4000u64 {
            counts[ring.shard_of(agent)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                (400..=1800).contains(&count),
                "shard {shard} owns {count}/4000 keys"
            );
        }
    }

    #[test]
    fn growing_the_ring_remaps_a_bounded_fraction() {
        for k in 1..8usize {
            let before = HashRing::new(k, 0x5EED);
            let after = HashRing::new(k + 1, 0x5EED);
            let keys = 4000u64;
            let moved = (0..keys)
                .filter(|&x| before.shard_of(x) != after.shard_of(x))
                .count();
            let bound = (1.6 / (k + 1) as f64 + 0.05) * keys as f64;
            assert!(
                (moved as f64) < bound,
                "k={k}: {moved}/{keys} moved (bound {bound:.0})"
            );
        }
    }

    #[test]
    fn shard_config_splits_capacity_equally() {
        let base = MarketConfig::new(Capacity::new(vec![64.0, 32.0]).unwrap());
        let shard = shard_market_config(&base, 4);
        assert_eq!(shard.capacity.as_slice(), &[16.0, 8.0]);
        assert!(shard.compatible_with(&base));
    }

    #[test]
    fn coordinator_converges_on_static_demand() {
        let mut coord = Coordinator::new(vec![64.0, 32.0], 4, 0.25);
        // Shard 0 carries 4x the demand of the others; shard 3 is empty.
        let demands = vec![
            vec![8.0, 4.0],
            vec![2.0, 1.0],
            vec![2.0, 1.0],
            vec![0.0, 0.0],
        ];
        let mut delivered = 0;
        for _ in 0..32 {
            let updates = coord.step(&demands);
            delivered += updates.iter().flatten().count();
            for (s, row) in coord.allotments().iter().enumerate() {
                for (r, &a) in row.iter().enumerate() {
                    assert!(a > 0.0, "shard {s} resource {r} allotment {a}");
                }
            }
            for r in 0..2 {
                let sum: f64 = coord.allotments().iter().map(|row| row[r]).sum();
                let total = [64.0, 32.0][r];
                assert!(
                    (sum - total).abs() < 1e-9 * total,
                    "resource {r} sums to {sum}"
                );
            }
        }
        assert!(delivered > 0, "static demand skew never produced an update");
        // The damped update converges: drift shrinks under the bound and
        // the loaded shard ends up with the largest allotment.
        let status = coord.status();
        assert!(status.drift < 0.01, "drift {}", status.drift);
        assert!(status.within_bound, "{status:?}");
        let rows = coord.allotments();
        assert!(
            rows[0][0] > rows[1][0] && rows[0][0] > rows[3][0],
            "{rows:?}"
        );
        // Once converged, further rounds deliver nothing (journal quiet).
        assert_eq!(coord.step(&demands).iter().flatten().count(), 0);
    }

    #[test]
    fn default_quorum_is_a_rounded_up_majority() {
        assert_eq!(default_quorum(1), 1);
        assert_eq!(default_quorum(2), 2);
        assert_eq!(default_quorum(3), 2);
        assert_eq!(default_quorum(4), 3);
        assert_eq!(default_quorum(5), 3);
        assert_eq!(default_quorum(8), 5);
    }

    #[test]
    fn undelivered_allotments_are_offered_again() {
        let mut coord = Coordinator::new(vec![64.0, 32.0], 2, 0.25);
        let demands = vec![vec![8.0, 4.0], vec![1.0, 0.5]];
        // Converge so further steps stop producing updates.
        for _ in 0..64 {
            coord.step(&demands);
        }
        assert_eq!(coord.step(&demands).iter().flatten().count(), 0);
        // A shard that missed its delivery gets the full allotment again
        // on the next step, even at the fixed point.
        coord.mark_undelivered(1);
        let updates = coord.step(&demands);
        assert!(updates[0].is_none());
        let offered = updates[1].as_ref().expect("redelivery");
        assert_eq!(offered, &coord.allotments()[1]);
        // resync_delivery hands back the same vector and quiets the
        // coordinator again.
        coord.mark_undelivered(1);
        let replayed = coord.resync_delivery(1);
        assert_eq!(&replayed, &coord.allotments()[1]);
        assert_eq!(coord.step(&demands).iter().flatten().count(), 0);
    }

    #[test]
    fn coordinator_equalizes_when_no_shard_reports_demand() {
        let mut coord = Coordinator::new(vec![10.0], 2, 0.25);
        let updates = coord.step(&[vec![0.0], vec![0.0]]);
        // Already at the equal split: nothing to deliver, zero drift.
        assert_eq!(updates.iter().flatten().count(), 0);
        assert!(coord.status().drift < 1e-12);
    }
}
