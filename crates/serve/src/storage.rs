//! The storage seam: a minimal filesystem trait the WAL writes through.
//!
//! [`crate::wal`] never touches [`std::fs`] directly; every directory
//! listing, segment read, append, rename and truncation goes through a
//! [`Storage`] implementation. In production that is [`FsStorage`], a
//! zero-state newtype over the real filesystem whose methods compile to
//! the exact `std::fs` calls the WAL used to make — same syscalls, same
//! byte-level behavior, same error kinds. Under deterministic simulation
//! (the `ref-dst` crate) it is an in-memory `SimDisk` that can inject
//! torn tails, failed fsyncs and bit flips on a seeded schedule while
//! reusing the real segment codec above it.
//!
//! The trait is deliberately small: it models exactly the operations the
//! WAL performs (there is no general `open`, no cursors, no permissions)
//! so a simulated implementation can be exhaustive about failure
//! injection without re-implementing POSIX.

use std::fs::{self, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// An open append-only file handle (one WAL segment).
///
/// Writes always land at the current end of file; [`set_len`] may shrink
/// the file (the WAL's self-heal after a failed append), after which
/// appends continue from the new end.
///
/// [`set_len`]: StorageFile::set_len
pub trait StorageFile: std::fmt::Debug + Send {
    /// Appends `bytes` at the end of the file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write failure; partial writes may have
    /// landed (the WAL self-heals via [`StorageFile::set_len`]).
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Flushes file *data* to durable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// Propagates the sync failure.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncates (or extends) the file to `len` bytes; subsequent
    /// appends continue from the new end.
    ///
    /// # Errors
    ///
    /// Propagates the truncation failure.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem surface the WAL needs (see the module docs).
///
/// Implementations must be usable from multiple threads: the server's
/// per-shard tickers each own a [`crate::wal::Wal`] over a shared
/// storage handle.
pub trait Storage: std::fmt::Debug + Send + Sync {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Non-recursive listing of `dir`, as full paths in arbitrary order.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure (e.g. a missing directory).
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Whether `path` exists (file or directory).
    fn exists(&self, path: &Path) -> bool;

    /// Reads a file's entire contents.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Writes (creating or replacing) `path` with `bytes`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (the checkpoint commit step).
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Deletes a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// A file's size in bytes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn len(&self, path: &Path) -> io::Result<u64>;

    /// Opens `path` for appending, creating it when `create` is set;
    /// the write position is the current end of file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn open_append(&self, path: &Path, create: bool) -> io::Result<Box<dyn StorageFile>>;

    /// Truncates an *unopened* file to `len` bytes and syncs it — the
    /// torn-tail repair recovery performs before reopening a segment.
    ///
    /// # Errors
    ///
    /// Propagates the underlying failure.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
}

/// The real filesystem: every method is the `std::fs` call the WAL
/// would otherwise make inline. Stateless and zero-cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsStorage;

/// A real [`std::fs::File`] opened in append mode.
#[derive(Debug)]
pub struct FsFile(fs::File);

impl StorageFile for FsFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)?;
        // Append-mode writes land at EOF regardless, but reposition the
        // cursor so the handle's notion of the end matches the file's.
        self.0.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

impl Storage for FsStorage {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut paths = Vec::new();
        for entry in fs::read_dir(dir)? {
            paths.push(entry?.path());
        }
        Ok(paths)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        fs::metadata(path).map(|m| m.len())
    }

    fn open_append(&self, path: &Path, create: bool) -> io::Result<Box<dyn StorageFile>> {
        let file = OpenOptions::new().create(create).append(true).open(path)?;
        Ok(Box::new(FsFile(file)))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_storage_round_trips_a_file() {
        let dir = std::env::temp_dir().join(format!("ref-storage-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let storage = FsStorage;
        storage.create_dir_all(&dir).unwrap();
        let path = dir.join("a.bin");
        assert!(!storage.exists(&path));
        storage.write(&path, b"hello").unwrap();
        assert!(storage.exists(&path));
        assert_eq!(storage.read(&path).unwrap(), b"hello");
        assert_eq!(storage.len(&path).unwrap(), 5);

        let mut file = storage.open_append(&path, false).unwrap();
        file.write_all(b" world").unwrap();
        file.sync_data().unwrap();
        drop(file);
        assert_eq!(storage.read(&path).unwrap(), b"hello world");

        storage.truncate(&path, 5).unwrap();
        assert_eq!(storage.read(&path).unwrap(), b"hello");

        let renamed = dir.join("b.bin");
        storage.rename(&path, &renamed).unwrap();
        let listed = storage.list_dir(&dir).unwrap();
        assert_eq!(listed, vec![renamed.clone()]);
        storage.remove_file(&renamed).unwrap();
        assert!(storage.list_dir(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_set_len_continues_at_the_new_end() {
        let dir = std::env::temp_dir().join(format!("ref-storage-heal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let storage = FsStorage;
        storage.create_dir_all(&dir).unwrap();
        let path = dir.join("seg.wal");
        let mut file = storage.open_append(&path, true).unwrap();
        file.write_all(b"aaaa").unwrap();
        file.write_all(b"bbbb").unwrap();
        file.set_len(4).unwrap();
        file.write_all(b"cc").unwrap();
        drop(file);
        assert_eq!(storage.read(&path).unwrap(), b"aaaacc");
        let _ = fs::remove_dir_all(&dir);
    }
}
