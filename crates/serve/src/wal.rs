//! A segmented, checksummed write-ahead log for market events.
//!
//! Durability contract (DESIGN.md §9): the ticker appends every admitted
//! event here *before* applying it to the engine, and a failed append
//! means the event is not applied — on disk, the WAL is always exactly
//! the sequence of applied events (never behind, and self-healed so it
//! is never ahead either, except for a torn tail left by a crash).
//! Recovery loads the newest valid checkpoint, replays the WAL tail, and
//! lands bit-identical to what [`crate::core::replay`] would produce
//! from the full event list.
//!
//! On-disk layout, one directory per market:
//!
//! ```text
//! segment-<first_seq:016x>.wal     framed event records
//! checkpoint-<seq:016x>.ckpt       full engine snapshot after `seq` events
//! ```
//!
//! Record framing is length + checksum + payload, little-endian:
//!
//! ```text
//! [ len: u32 ][ crc32(payload): u32 ][ payload: len bytes ]
//! ```
//!
//! where the payload is the event's journal JSON (the
//! [`crate::protocol::event_to_value`] form — bit-exact for `f64`s).
//! Sequence numbers are implicit: a segment's file name carries the
//! sequence of its first record, and records are densely numbered from
//! there. A checkpoint file holds the versioned market snapshot text
//! plus its own CRC; checkpoints are written to a temp file and renamed,
//! so a crash mid-checkpoint leaves the previous one intact. After a
//! successful checkpoint, segments and checkpoints wholly covered by it
//! are deleted (unless [`WalConfig::retain_history`] keeps them).
//!
//! Corruption policy: a short or checksum-failing record in the *last*
//! segment is a torn tail — expected after a crash — and recovery
//! truncates the file back to the last complete record. The same damage
//! in any earlier segment is real corruption and recovery refuses it.
//!
//! One process at a time owns a WAL directory; there is no lock file.

use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ref_market::{MarketEvent, MarketSnapshot};

use crate::fault::{FaultPlan, WalFaultKind};
use crate::json::Value;
use crate::protocol::{event_to_value, value_to_event};
use crate::storage::{FsStorage, Storage, StorageFile};

/// Per-record framing overhead in bytes (length + checksum).
pub const RECORD_HEADER_BYTES: usize = 8;

/// Records larger than this are treated as corruption, not allocation
/// requests — a sane event payload is a few hundred bytes.
const MAX_RECORD_BYTES: u32 = 1 << 26;

const CHECKPOINT_MAGIC: &str = "refserve-checkpoint v1";

/// Durability knobs for a [`Wal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding segments and checkpoints (created on open).
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one reaches this size.
    pub segment_max_bytes: u64,
    /// Take a snapshot checkpoint every this many appended events
    /// (0 disables checkpointing).
    pub checkpoint_every: u64,
    /// `fsync` each record before reporting it durable. Off by default:
    /// the tests kill processes, not machines, and the page cache
    /// survives `SIGKILL`.
    pub fsync: bool,
    /// Keep segments and checkpoints that a newer checkpoint covers,
    /// instead of deleting them. Needed when the full event history
    /// must stay readable (e.g. the `journal` op after an in-memory
    /// overflow, or offline audits).
    pub retain_history: bool,
}

impl WalConfig {
    /// A configuration with default durability knobs around `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            segment_max_bytes: 1 << 20,
            checkpoint_every: 4096,
            fsync: false,
            retain_history: false,
        }
    }

    /// Sets the segment rotation size.
    pub fn with_segment_max_bytes(mut self, bytes: u64) -> WalConfig {
        self.segment_max_bytes = bytes;
        self
    }

    /// Sets the checkpoint cadence (0 disables).
    pub fn with_checkpoint_every(mut self, events: u64) -> WalConfig {
        self.checkpoint_every = events;
        self
    }

    /// Enables per-record fsync.
    pub fn with_fsync(mut self, fsync: bool) -> WalConfig {
        self.fsync = fsync;
        self
    }

    /// Keeps covered segments/checkpoints instead of pruning them.
    pub fn with_retain_history(mut self, retain: bool) -> WalConfig {
        self.retain_history = retain;
        self
    }
}

// IEEE CRC32 (reflected, polynomial 0xEDB88320), table-driven. Hand
// rolled because the build is std-only; bit-compatible with zlib's
// crc32 so external tooling can verify records.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (zlib-compatible).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("segment-{first_seq:016x}.wal"))
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:016x}.ckpt"))
}

/// Frames `payload` as one record: `[len:u32][crc32:u32][payload]`,
/// little-endian. Shared with the replication stream, which ships WAL
/// records over TCP in exactly this envelope.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Maximum framed payload size shared by WAL records and replication
/// frames; larger length prefixes are treated as corruption.
pub const MAX_FRAME_BYTES: u32 = MAX_RECORD_BYTES;

fn encode_event(event: &MarketEvent) -> Vec<u8> {
    event_to_value(event).encode().into_bytes()
}

fn corrupt(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

/// What `parse_records` found in one segment's bytes.
struct SegmentScan {
    events: Vec<MarketEvent>,
    /// Byte offset of the first incomplete/invalid record, if the tail
    /// is torn; `None` when the segment parsed cleanly to EOF.
    torn_at: Option<u64>,
}

/// Parses framed records from `bytes`, stopping at the first torn or
/// invalid record (reported via `torn_at`, judged by the caller).
fn parse_records(bytes: &[u8]) -> SegmentScan {
    let mut events = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < RECORD_HEADER_BYTES {
            return SegmentScan {
                events,
                torn_at: Some(offset as u64),
            };
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let body = &rest[RECORD_HEADER_BYTES..];
        if len > MAX_RECORD_BYTES || (body.len() as u64) < u64::from(len) {
            return SegmentScan {
                events,
                torn_at: Some(offset as u64),
            };
        }
        let payload = &body[..len as usize];
        if crc32(payload) != crc {
            return SegmentScan {
                events,
                torn_at: Some(offset as u64),
            };
        }
        let event = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| Value::parse(text).ok())
            .and_then(|v| value_to_event(&v).ok());
        match event {
            Some(event) => events.push(event),
            // A checksum-valid record that does not decode is treated
            // like a torn record: the caller decides whether a tail may
            // be dropped here or the segment is corrupt.
            None => {
                return SegmentScan {
                    events,
                    torn_at: Some(offset as u64),
                }
            }
        }
        offset += RECORD_HEADER_BYTES + len as usize;
    }
    SegmentScan {
        events,
        torn_at: None,
    }
}

/// `(first_seq_or_seq, path)` pairs in ascending sequence order.
type SeqPaths = Vec<(u64, PathBuf)>;

fn list_dir(storage: &dyn Storage, dir: &Path) -> io::Result<(SeqPaths, SeqPaths)> {
    let mut segments = Vec::new();
    let mut checkpoints = Vec::new();
    for path in storage.list_dir(dir)? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(seq) = name
            .strip_prefix("segment-")
            .and_then(|r| r.strip_suffix(".wal"))
            .and_then(|r| u64::from_str_radix(r, 16).ok())
        {
            segments.push((seq, path));
        } else if let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|r| r.strip_suffix(".ckpt"))
            .and_then(|r| u64::from_str_radix(r, 16).ok())
        {
            checkpoints.push((seq, path));
        }
        // Anything else (including leftover .tmp files) is ignored.
    }
    segments.sort_unstable_by_key(|(seq, _)| *seq);
    checkpoints.sort_unstable_by_key(|(seq, _)| *seq);
    Ok((segments, checkpoints))
}

fn read_checkpoint_file(storage: &dyn Storage, path: &Path) -> io::Result<(u64, MarketSnapshot)> {
    let text = String::from_utf8(storage.read(path)?)
        .map_err(|_| corrupt("checkpoint is not valid UTF-8"))?;
    let mut rest = text.as_str();
    let mut take_line = |what: &str| -> io::Result<&str> {
        let (line, tail) = rest
            .split_once('\n')
            .ok_or_else(|| corrupt(format!("checkpoint missing {what} line")))?;
        rest = tail;
        Ok(line)
    };
    let magic = take_line("magic")?;
    if magic != CHECKPOINT_MAGIC {
        return Err(corrupt(format!("bad checkpoint magic {magic:?}")));
    }
    let seq = take_line("seq")?
        .strip_prefix("seq ")
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| corrupt("bad checkpoint seq line"))?;
    let crc = take_line("crc")?
        .strip_prefix("crc ")
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .ok_or_else(|| corrupt("bad checkpoint crc line"))?;
    if crc32(rest.as_bytes()) != crc {
        return Err(corrupt("checkpoint body fails its checksum"));
    }
    let snapshot =
        MarketSnapshot::decode(rest).map_err(|e| corrupt(format!("checkpoint snapshot: {e}")))?;
    Ok((seq, snapshot))
}

/// The outcome of opening (and, if needed, repairing) a WAL directory.
#[derive(Debug)]
pub struct Recovery {
    /// The opened log, positioned for appends.
    pub wal: Wal,
    /// The newest valid checkpoint, if any: the engine state after the
    /// first `seq` events.
    pub checkpoint: Option<(u64, MarketSnapshot)>,
    /// Events at and after the checkpoint sequence, to be replayed on
    /// top of it (or from scratch when there is no checkpoint).
    pub tail: Vec<MarketEvent>,
    /// Bytes of torn tail truncated from the last segment.
    pub truncated_bytes: u64,
}

/// A write-ahead log open for appending.
#[derive(Debug)]
pub struct Wal {
    config: WalConfig,
    faults: FaultPlan,
    storage: Arc<dyn Storage>,
    file: Box<dyn StorageFile>,
    /// On-disk segments in ascending first-sequence order; the last one
    /// is the open segment `file` appends to.
    segments: Vec<(u64, PathBuf)>,
    /// Size in bytes of the open segment.
    segment_bytes: u64,
    /// Records already in the open segment.
    segment_records: u64,
    next_seq: u64,
    poisoned: bool,
    appends: u64,
    checkpoints_taken: u64,
    /// Total bytes across every retained segment (disk-usage gauge).
    total_bytes: u64,
    /// Size of the newest checkpoint file in bytes (0 when none).
    checkpoint_bytes: u64,
}

impl Wal {
    /// Opens (creating or recovering) the WAL directory in `config` and
    /// returns the log plus everything needed to rebuild engine state.
    ///
    /// An empty or missing directory yields a fresh log at sequence 0.
    /// A directory with prior state is recovered: newest valid
    /// checkpoint, tail replayed, torn final record truncated away.
    ///
    /// # Errors
    ///
    /// I/O failures, and [`io::ErrorKind::InvalidData`] for corruption
    /// that recovery must not paper over (a bad record in a non-final
    /// segment, or a sequence gap).
    pub fn open(config: WalConfig, faults: FaultPlan) -> io::Result<Recovery> {
        Wal::open_with(Arc::new(FsStorage), config, faults)
    }

    /// [`Wal::open`] against an explicit [`Storage`] implementation —
    /// the deterministic simulator's entry point (an in-memory
    /// `SimDisk`); `open` itself is this with [`FsStorage`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Wal::open`].
    pub fn open_with(
        storage: Arc<dyn Storage>,
        config: WalConfig,
        faults: FaultPlan,
    ) -> io::Result<Recovery> {
        storage.create_dir_all(&config.dir)?;
        let (disk_segments, disk_checkpoints) = list_dir(storage.as_ref(), &config.dir)?;

        // Newest structurally-valid checkpoint wins; damaged ones are
        // skipped (a crash mid-rename can leave none — that is fine, the
        // segments still hold everything).
        let mut checkpoint = None;
        for (seq, path) in disk_checkpoints.iter().rev() {
            match read_checkpoint_file(storage.as_ref(), path) {
                Ok((file_seq, snapshot)) if file_seq == *seq => {
                    checkpoint = Some((*seq, snapshot));
                    break;
                }
                _ => continue,
            }
        }
        let ckpt_seq = checkpoint.as_ref().map_or(0, |(seq, _)| *seq);

        // Replay starts in the newest segment that begins at or before
        // the checkpoint; earlier segments are fully covered by it.
        let start = match disk_segments
            .iter()
            .rposition(|(first, _)| *first <= ckpt_seq)
        {
            Some(i) => i,
            None if disk_segments.is_empty() => 0,
            None => {
                return Err(corrupt(format!(
                    "no segment reaches back to checkpoint seq {ckpt_seq}: history is missing"
                )))
            }
        };

        let mut tail = Vec::new();
        let mut truncated_bytes = 0u64;
        let mut cursor = disk_segments
            .get(start)
            .map_or(ckpt_seq, |(first, _)| *first);
        let mut kept_segments: Vec<(u64, PathBuf)> = disk_segments[..start].to_vec();
        let mut last_bytes = 0u64;
        let mut last_records = 0u64;
        for (i, (first, path)) in disk_segments[start..].iter().enumerate() {
            let is_last = start + i == disk_segments.len() - 1;
            if *first != cursor {
                return Err(corrupt(format!(
                    "sequence gap: segment {path:?} starts at {first}, expected {cursor}"
                )));
            }
            let bytes = storage.read(path)?;
            let scan = parse_records(&bytes);
            let parsed_bytes: u64 =
                bytes.len() as u64 - scan.torn_at.map_or(0, |at| bytes.len() as u64 - at);
            if let Some(at) = scan.torn_at {
                if !is_last {
                    return Err(corrupt(format!(
                        "corrupt record at byte {at} of non-final segment {path:?}"
                    )));
                }
                // Torn tail: truncate the file back to the last complete
                // record so future appends extend a clean log.
                truncated_bytes = bytes.len() as u64 - at;
                storage.truncate(path, at)?;
            }
            for (j, event) in scan.events.iter().enumerate() {
                let seq = first + j as u64;
                if seq >= ckpt_seq {
                    tail.push(event.clone());
                }
            }
            cursor = first + scan.events.len() as u64;
            kept_segments.push((*first, path.clone()));
            if is_last {
                last_bytes = parsed_bytes;
                last_records = scan.events.len() as u64;
            }
        }

        // A deliberately-truncated tail can land the log *behind* the
        // checkpoint; the checkpoint is authoritative, so resume from it
        // in a fresh segment. The stale segments can never replay up to
        // the checkpoint again (the record between them and the fresh
        // segment exists only inside the checkpoint), so they are
        // dropped to keep the on-disk log gap-free — unless history is
        // retained, in which case they stay behind for forensics.
        let next_seq = cursor.max(ckpt_seq);
        let fresh_segment = disk_segments.is_empty() || cursor < ckpt_seq;
        if cursor < ckpt_seq && !config.retain_history {
            for (_, path) in kept_segments.drain(..) {
                let _ = storage.remove_file(&path);
            }
        }
        let (file, segment_bytes, segment_records) = if fresh_segment {
            let path = segment_path(&config.dir, next_seq);
            let file = storage.open_append(&path, true)?;
            kept_segments.push((next_seq, path));
            (file, 0, 0)
        } else {
            let path = kept_segments.last().expect("non-empty").1.clone();
            let file = storage.open_append(&path, false)?;
            (file, last_bytes, last_records)
        };

        let mut total_bytes = 0u64;
        for (_, path) in &kept_segments {
            total_bytes += storage.len(path).unwrap_or(0);
        }
        let checkpoint_bytes = checkpoint
            .as_ref()
            .map(|(seq, _)| checkpoint_path(&config.dir, *seq))
            .and_then(|path| storage.len(&path).ok())
            .unwrap_or(0);

        Ok(Recovery {
            wal: Wal {
                config,
                faults,
                storage,
                file,
                segments: kept_segments,
                segment_bytes,
                segment_records,
                next_seq,
                poisoned: false,
                appends: 0,
                checkpoints_taken: 0,
                total_bytes,
                checkpoint_bytes,
            },
            checkpoint,
            tail,
            truncated_bytes,
        })
    }

    /// The sequence number the next appended record will get (equals
    /// the number of events ever logged).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// First sequence still present on disk (0 unless pruned).
    pub fn first_retained_seq(&self) -> u64 {
        self.segments.first().map_or(self.next_seq, |(s, _)| *s)
    }

    /// Successful appends since this handle was opened.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Checkpoints taken since this handle was opened.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Whether a failed write poisoned the log (further appends refuse).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The configured checkpoint cadence (0 = never).
    pub fn checkpoint_every(&self) -> u64 {
        self.config.checkpoint_every
    }

    /// Number of retained segments on disk (including the open one).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes across every retained segment.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Size in bytes of the newest checkpoint file (0 when none).
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// Replaces the entire log with a checkpoint at `seq` holding
    /// `snapshot_text`, discarding every existing segment and checkpoint
    /// and opening a fresh segment at `seq`.
    ///
    /// This is the standby bootstrap path: when a primary's stream opens
    /// with a full snapshot (the standby's history is too far behind the
    /// primary's retained log), the standby's local WAL must restart
    /// from that snapshot so its own durable chain matches what it now
    /// serves. The checkpoint is written before old state is deleted, so
    /// a crash mid-reset recovers to the new snapshot, never to nothing.
    ///
    /// # Errors
    ///
    /// I/O failures writing the checkpoint or opening the fresh segment.
    pub fn reset_to_checkpoint(&mut self, seq: u64, snapshot_text: &str) -> io::Result<()> {
        let body_crc = crc32(snapshot_text.as_bytes());
        let content = format!("{CHECKPOINT_MAGIC}\nseq {seq}\ncrc {body_crc:08x}\n{snapshot_text}");
        let path = checkpoint_path(&self.config.dir, seq);
        let tmp = path.with_extension("tmp");
        let content_len = content.len() as u64;
        self.storage.write(&tmp, content.as_bytes())?;
        self.storage.rename(&tmp, &path)?;

        // The new checkpoint is durable; now drop the stale history.
        let (segments, checkpoints) = list_dir(self.storage.as_ref(), &self.config.dir)?;
        for (ckpt_seq, old) in checkpoints {
            if ckpt_seq != seq {
                let _ = self.storage.remove_file(&old);
            }
        }
        for (_, old) in segments {
            let _ = self.storage.remove_file(&old);
        }
        let segment = segment_path(&self.config.dir, seq);
        self.file = self.storage.open_append(&segment, true)?;
        self.segments = vec![(seq, segment)];
        self.segment_bytes = 0;
        self.segment_records = 0;
        self.next_seq = seq;
        self.poisoned = false;
        self.total_bytes = 0;
        self.checkpoint_bytes = content_len;
        self.checkpoints_taken += 1;
        Ok(())
    }

    /// Appends one event durably; the event may be applied only after
    /// this returns `Ok`. Returns the record's sequence number.
    ///
    /// # Errors
    ///
    /// On any write failure (real or injected) the log self-heals by
    /// truncating back to the previous record boundary, so an event
    /// whose append failed is guaranteed absent from the log; if even
    /// the truncation fails the log is poisoned and refuses appends.
    pub fn append(&mut self, event: &MarketEvent) -> io::Result<u64> {
        if self.poisoned {
            return Err(io::Error::other("wal poisoned by an earlier failed write"));
        }
        let seq = self.next_seq;
        // Schedule-driven faults compile down to the same three
        // injection points as the single-shot fields; the matching entry
        // is consumed so each fires once. Single-shot fields win ties by
        // being checked first at each point.
        let scheduled = self
            .faults
            .wal_schedule
            .iter()
            .position(|f| f.at_seq == seq)
            .map(|i| self.faults.wal_schedule.remove(i).kind);
        if self.faults.fail_append_at == Some(seq) {
            // Transient by design: the fault fires once, so a retry of
            // the same sequence (the caller never advanced) succeeds.
            self.faults.fail_append_at = None;
            return Err(io::Error::other(format!(
                "injected append failure at seq {seq}"
            )));
        }
        if scheduled == Some(WalFaultKind::FailAppend) {
            return Err(io::Error::other(format!(
                "injected append failure at seq {seq}"
            )));
        }
        if self.segment_records > 0 && self.segment_bytes >= self.config.segment_max_bytes {
            self.rotate()?;
        }
        let record = frame(&encode_event(event));
        let torn = match self.faults.torn_append_at {
            Some((torn_seq, bytes)) if torn_seq == seq => Some(bytes),
            _ => match scheduled {
                Some(WalFaultKind::Torn { bytes }) => Some(bytes),
                _ => None,
            },
        };
        if let Some(bytes) = torn {
            // Simulate dying mid-write: leave a partial record on
            // disk and refuse all further writes.
            let cut = bytes.min(record.len().saturating_sub(1)).max(1);
            let _ = self.file.write_all(&record[..cut]);
            let _ = self.file.sync_data();
            self.poisoned = true;
            return Err(io::Error::other(format!(
                "injected torn write at seq {seq}"
            )));
        }
        let inject_sync_failure =
            self.faults.fail_sync_at == Some(seq) || scheduled == Some(WalFaultKind::FailSync);
        if self.faults.fail_sync_at == Some(seq) {
            // Transient, like `fail_append_at`.
            self.faults.fail_sync_at = None;
        }
        let outcome = self.file.write_all(&record).and_then(|()| {
            if inject_sync_failure {
                return Err(io::Error::other(format!(
                    "injected fsync failure at seq {seq}"
                )));
            }
            if self.config.fsync {
                self.file.sync_data()?;
            }
            Ok(())
        });
        if let Err(e) = outcome {
            // Self-heal: drop whatever partial bytes landed so the log
            // never runs ahead of the applied state.
            if self.file.set_len(self.segment_bytes).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.segment_bytes += record.len() as u64;
        self.total_bytes += record.len() as u64;
        self.segment_records += 1;
        self.next_seq += 1;
        self.appends += 1;
        Ok(seq)
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        let path = segment_path(&self.config.dir, self.next_seq);
        self.file = self.storage.open_append(&path, true)?;
        self.segments.push((self.next_seq, path));
        self.segment_bytes = 0;
        self.segment_records = 0;
        Ok(())
    }

    /// Writes a checkpoint of `snapshot_text` (the engine state after
    /// all `next_seq` logged events), then prunes segments and
    /// checkpoints it covers (unless history is retained). Written via
    /// temp file + rename, so a crash leaves the previous checkpoint.
    ///
    /// # Errors
    ///
    /// I/O failures; the log itself is unaffected by a failed
    /// checkpoint (appends continue, recovery just replays more tail).
    pub fn checkpoint(&mut self, snapshot_text: &str) -> io::Result<()> {
        let seq = self.next_seq;
        let body_crc = crc32(snapshot_text.as_bytes());
        let content = format!("{CHECKPOINT_MAGIC}\nseq {seq}\ncrc {body_crc:08x}\n{snapshot_text}");
        let path = checkpoint_path(&self.config.dir, seq);
        let tmp = path.with_extension("tmp");
        let content_len = content.len() as u64;
        self.storage.write(&tmp, content.as_bytes())?;
        self.storage.rename(&tmp, &path)?;
        self.checkpoints_taken += 1;
        self.checkpoint_bytes = content_len;
        if !self.config.retain_history {
            self.prune(seq)?;
        }
        Ok(())
    }

    /// Deletes checkpoints older than `seq` and segments wholly below
    /// `seq` (a segment is deletable when the *next* segment starts at
    /// or before `seq`, so the segment containing `seq` survives).
    fn prune(&mut self, seq: u64) -> io::Result<()> {
        let (_, checkpoints) = list_dir(self.storage.as_ref(), &self.config.dir)?;
        for (ckpt_seq, path) in checkpoints {
            if ckpt_seq < seq {
                let _ = self.storage.remove_file(&path);
            }
        }
        while self.segments.len() > 1 && self.segments[1].0 <= seq {
            let (_, path) = self.segments.remove(0);
            let removed = self.storage.len(&path).unwrap_or(0);
            let _ = self.storage.remove_file(&path);
            self.total_bytes = self.total_bytes.saturating_sub(removed);
        }
        Ok(())
    }

    /// Reads every decodable event still on disk, in order, together
    /// with the sequence number of the first one. Tolerates a torn tail
    /// (stops there) without modifying any file — safe to call while
    /// the log is open for appends, since the ticker is the only writer.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`io::ErrorKind::InvalidData`] for interior
    /// corruption or sequence gaps.
    pub fn read_events(&self) -> io::Result<(u64, Vec<MarketEvent>)> {
        read_events_with(self.storage.as_ref(), &self.config.dir)
    }

    /// Verifies every CRC in every retained segment and checkpoint (see
    /// [`scrub`]) through this log's own storage handle.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures *reading* the directory; verification
    /// findings are reported in the [`ScrubReport`], not as errors.
    pub fn scrub(&self) -> io::Result<ScrubReport> {
        scrub_with(self.storage.as_ref(), &self.config.dir)
    }
}

/// Reads all decodable events from a WAL directory (see
/// [`Wal::read_events`]); usable offline, e.g. for audits or the chaos
/// harness's independent verification.
///
/// # Errors
///
/// I/O failures, or [`io::ErrorKind::InvalidData`] for interior
/// corruption or sequence gaps.
pub fn read_events(dir: &Path) -> io::Result<(u64, Vec<MarketEvent>)> {
    read_events_with(&FsStorage, dir)
}

/// [`read_events`] against an explicit [`Storage`] implementation.
///
/// # Errors
///
/// Exactly as [`read_events`].
pub fn read_events_with(storage: &dyn Storage, dir: &Path) -> io::Result<(u64, Vec<MarketEvent>)> {
    let (segments, _) = list_dir(storage, dir)?;
    let Some(&(first_seq, _)) = segments.first() else {
        return Ok((0, Vec::new()));
    };
    let mut events = Vec::new();
    let mut cursor = first_seq;
    for (i, (first, path)) in segments.iter().enumerate() {
        if *first != cursor {
            return Err(corrupt(format!(
                "sequence gap: segment {path:?} starts at {first}, expected {cursor}"
            )));
        }
        let bytes = storage.read(path)?;
        let scan = parse_records(&bytes);
        if scan.torn_at.is_some() && i != segments.len() - 1 {
            return Err(corrupt(format!(
                "corrupt record in non-final segment {path:?}"
            )));
        }
        cursor = first + scan.events.len() as u64;
        events.extend(scan.events);
    }
    Ok((first_seq, events))
}

/// What a WAL scrub found (see [`scrub`]). Clean means `errors` is
/// empty: every record in every segment passed its CRC, and every
/// checkpoint's body matched its own checksum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Segments scanned.
    pub segments: u64,
    /// Framed records whose CRC verified.
    pub records: u64,
    /// Checkpoint files scanned.
    pub checkpoints: u64,
    /// Human-readable findings, one per damaged file. Empty when clean.
    pub errors: Vec<String>,
}

impl ScrubReport {
    /// Whether the scrub found no damage at all.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Walks *all* retained segments and checkpoints in `dir`, verifying
/// every record CRC and every checkpoint checksum — not just the tail
/// that [`Wal::open`] validates. Read-only: nothing is repaired or
/// truncated, so it is safe on a live directory (the ticker is the only
/// writer, and it is the one calling). Damage is reported in the
/// [`ScrubReport`], one finding per file.
///
/// # Errors
///
/// Propagates directory-listing and read failures; a missing directory
/// yields an empty (clean) report.
pub fn scrub(dir: &Path) -> io::Result<ScrubReport> {
    scrub_with(&FsStorage, dir)
}

/// [`scrub`] against an explicit [`Storage`] implementation.
///
/// # Errors
///
/// Exactly as [`scrub`].
pub fn scrub_with(storage: &dyn Storage, dir: &Path) -> io::Result<ScrubReport> {
    let mut report = ScrubReport::default();
    if !storage.exists(dir) {
        return Ok(report);
    }
    let (segments, checkpoints) = list_dir(storage, dir)?;
    let last = segments.len().saturating_sub(1);
    for (i, (first, path)) in segments.iter().enumerate() {
        report.segments += 1;
        let bytes = storage.read(path)?;
        let scan = parse_records(&bytes);
        report.records += scan.events.len() as u64;
        if let Some(at) = scan.torn_at {
            // An open log legitimately ends mid-record only if the
            // process died this instant; by the time a scrub runs,
            // recovery has already truncated any torn tail, so *any*
            // unparseable bytes — even in the final segment — are
            // reported.
            let seq = first + scan.events.len() as u64;
            report.errors.push(format!(
                "segment {path:?}: invalid record at byte {at} (seq {seq}{})",
                if i == last { ", torn tail" } else { "" }
            ));
        }
    }
    for (seq, path) in &checkpoints {
        report.checkpoints += 1;
        match read_checkpoint_file(storage, path) {
            Ok((file_seq, _)) if file_seq == *seq => {}
            Ok((file_seq, _)) => report.errors.push(format!(
                "checkpoint {path:?}: name says seq {seq} but file says {file_seq}"
            )),
            Err(e) => report.errors.push(format!("checkpoint {path:?}: {e}")),
        }
    }
    Ok(report)
}

/// The newest structurally-valid checkpoint in `dir`, if any, as
/// `(seq, snapshot_text)`. Damaged checkpoints are skipped, exactly as
/// [`Wal::open`] does. Safe to call while the directory's owning server
/// is live (checkpoints are written atomically via rename), which is
/// how a primary bootstraps a standby that is behind the retained log.
///
/// # Errors
///
/// Propagates directory-listing failures; a missing directory yields
/// `Ok(None)`.
pub fn newest_checkpoint(dir: &Path) -> io::Result<Option<(u64, String)>> {
    newest_checkpoint_with(&FsStorage, dir)
}

/// [`newest_checkpoint`] against an explicit [`Storage`] implementation.
///
/// # Errors
///
/// Exactly as [`newest_checkpoint`].
pub fn newest_checkpoint_with(
    storage: &dyn Storage,
    dir: &Path,
) -> io::Result<Option<(u64, String)>> {
    if !storage.exists(dir) {
        return Ok(None);
    }
    let (_, checkpoints) = list_dir(storage, dir)?;
    for (seq, path) in checkpoints.iter().rev() {
        if let Ok((file_seq, snapshot)) = read_checkpoint_file(storage, path) {
            if file_seq == *seq {
                return Ok(Some((*seq, snapshot.encode())));
            }
        }
    }
    Ok(None)
}

/// Whether `dir` already holds WAL state (any non-empty segment or any
/// checkpoint). [`crate::Server::start`] refuses such a directory so a
/// fresh boot cannot silently shadow recoverable history.
///
/// # Errors
///
/// Propagates directory-listing failures.
pub fn dir_has_state(dir: &Path) -> io::Result<bool> {
    dir_has_state_with(&FsStorage, dir)
}

/// [`dir_has_state`] against an explicit [`Storage`] implementation.
///
/// # Errors
///
/// Exactly as [`dir_has_state`].
pub fn dir_has_state_with(storage: &dyn Storage, dir: &Path) -> io::Result<bool> {
    if !storage.exists(dir) {
        return Ok(false);
    }
    let (segments, checkpoints) = list_dir(storage, dir)?;
    if !checkpoints.is_empty() {
        return Ok(true);
    }
    for (_, path) in &segments {
        if storage.len(path)? > 0 {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Reads a file's raw bytes — test/chaos helper for poking at segments.
///
/// # Errors
///
/// Propagates the read failure.
pub fn read_raw(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    Ok(bytes)
}

/// Path of the newest (highest first-sequence) segment in `dir`, if
/// any — the one a torn-write test would truncate.
///
/// # Errors
///
/// Propagates directory-listing failures.
pub fn last_segment_path(dir: &Path) -> io::Result<Option<PathBuf>> {
    let (segments, _) = list_dir(&FsStorage, dir)?;
    Ok(segments.into_iter().next_back().map(|(_, path)| path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ScheduledWalFault;
    use ref_market::ObservationSource;
    use std::fs::{self, OpenOptions};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Self-cleaning unique temp directory (no tempfile crate).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("ref-wal-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn join(id: u64) -> MarketEvent {
        MarketEvent::AgentJoined {
            id,
            source: ObservationSource::External,
        }
    }

    fn observe(id: u64, a0: f64) -> MarketEvent {
        MarketEvent::ObservationReported {
            id,
            allocation: vec![a0, 1.0],
            performance: 1.5,
        }
    }

    fn events(n: usize) -> Vec<MarketEvent> {
        (0..n)
            .map(|i| match i % 3 {
                0 => join(i as u64),
                1 => observe((i as u64).saturating_sub(1), 0.5 + i as f64),
                _ => MarketEvent::EpochTick,
            })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // zlib's crc32("123456789") — the standard check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_recover_round_trips_every_event() {
        let dir = TempDir::new("roundtrip");
        let all = events(17);
        {
            let mut wal = Wal::open(WalConfig::new(dir.path()), FaultPlan::none())
                .unwrap()
                .wal;
            for (i, e) in all.iter().enumerate() {
                assert_eq!(wal.append(e).unwrap(), i as u64);
            }
        }
        let rec = Wal::open(WalConfig::new(dir.path()), FaultPlan::none()).unwrap();
        assert!(rec.checkpoint.is_none());
        assert_eq!(rec.tail, all);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.wal.next_seq(), 17);
    }

    #[test]
    fn rotation_splits_segments_and_reads_stay_contiguous() {
        let dir = TempDir::new("rotate");
        let all = events(40);
        let config = WalConfig::new(dir.path()).with_segment_max_bytes(128);
        {
            let mut wal = Wal::open(config.clone(), FaultPlan::none()).unwrap().wal;
            for e in &all {
                wal.append(e).unwrap();
            }
            assert!(wal.segments.len() > 2, "tiny segments must rotate");
        }
        let (first, read) = read_events(dir.path()).unwrap();
        assert_eq!(first, 0);
        assert_eq!(read, all);
        // Appending after recovery continues the same numbering.
        let mut rec = Wal::open(config, FaultPlan::none()).unwrap();
        assert_eq!(rec.wal.next_seq(), 40);
        assert_eq!(rec.wal.append(&MarketEvent::EpochTick).unwrap(), 40);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_complete_record() {
        let dir = TempDir::new("torn");
        let all = events(9);
        {
            let mut wal = Wal::open(WalConfig::new(dir.path()), FaultPlan::none())
                .unwrap()
                .wal;
            for e in &all {
                wal.append(e).unwrap();
            }
        }
        // Chop 3 bytes off the single segment: the final record is torn.
        let path = segment_path(dir.path(), 0);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let rec = Wal::open(WalConfig::new(dir.path()), FaultPlan::none()).unwrap();
        assert_eq!(rec.tail, all[..8].to_vec());
        assert_eq!(rec.wal.next_seq(), 8);
        assert!(rec.truncated_bytes > 0);
        // The file itself was repaired: a second recovery is clean.
        let rec2 = Wal::open(WalConfig::new(dir.path()), FaultPlan::none()).unwrap();
        assert_eq!(rec2.truncated_bytes, 0);
        assert_eq!(rec2.tail, all[..8].to_vec());
    }

    #[test]
    fn interior_corruption_is_refused_not_repaired() {
        let dir = TempDir::new("interior");
        let config = WalConfig::new(dir.path()).with_segment_max_bytes(64);
        {
            let mut wal = Wal::open(config.clone(), FaultPlan::none()).unwrap().wal;
            for e in events(30) {
                wal.append(&e).unwrap();
            }
            assert!(wal.segments.len() >= 3);
        }
        // Flip a payload byte in the FIRST segment: not a torn tail.
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let err = Wal::open(config, FaultPlan::none()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn injected_append_failure_leaves_no_bytes() {
        let dir = TempDir::new("failinj");
        let faults = FaultPlan {
            fail_append_at: Some(1),
            ..FaultPlan::default()
        };
        let mut wal = Wal::open(WalConfig::new(dir.path()), faults).unwrap().wal;
        wal.append(&join(1)).unwrap();
        let before = fs::metadata(segment_path(dir.path(), 0)).unwrap().len();
        assert!(wal.append(&join(2)).is_err());
        let after = fs::metadata(segment_path(dir.path(), 0)).unwrap().len();
        assert_eq!(before, after, "failed append must not leave bytes");
        assert!(!wal.poisoned());
        // seq 1 is retried successfully (the fault fires once by seq).
        assert_eq!(wal.append(&join(2)).unwrap(), 1);
    }

    #[test]
    fn injected_torn_append_poisons_and_recovery_repairs() {
        let dir = TempDir::new("torninj");
        let faults = FaultPlan {
            torn_append_at: Some((2, 5)),
            ..FaultPlan::default()
        };
        let all = events(4);
        let mut wal = Wal::open(WalConfig::new(dir.path()), faults).unwrap().wal;
        wal.append(&all[0]).unwrap();
        wal.append(&all[1]).unwrap();
        assert!(wal.append(&all[2]).is_err());
        assert!(wal.poisoned());
        assert!(wal.append(&all[3]).is_err(), "poisoned log refuses appends");
        drop(wal);
        let rec = Wal::open(WalConfig::new(dir.path()), FaultPlan::none()).unwrap();
        assert_eq!(rec.tail, all[..2].to_vec());
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn checkpoints_prune_covered_segments() {
        use ref_core::resource::Capacity;
        use ref_market::{MarketConfig, MarketEngine};

        let dir = TempDir::new("ckpt");
        let market = MarketConfig::new(Capacity::new(vec![8.0, 4.0]).unwrap());
        let config = WalConfig::new(dir.path()).with_segment_max_bytes(96);
        let mut engine = MarketEngine::new(market.clone()).unwrap();
        let all = events(24);
        {
            let mut wal = Wal::open(config.clone(), FaultPlan::none()).unwrap().wal;
            for e in &all {
                wal.append(e).unwrap();
                let _ = engine.apply_now(e.clone());
            }
            wal.checkpoint(&engine.snapshot().encode()).unwrap();
            assert_eq!(wal.segments.len(), 1, "covered segments pruned");
            assert!(wal.first_retained_seq() > 0);
        }
        // Recovery restores from the checkpoint with an empty tail and
        // lands bit-identical to the live engine.
        let rec = Wal::open(config, FaultPlan::none()).unwrap();
        let (seq, snapshot) = rec.checkpoint.expect("checkpoint survives");
        assert_eq!(seq, 24);
        assert!(rec.tail.is_empty());
        let restored = MarketEngine::restore(&snapshot).unwrap();
        assert_eq!(
            restored.snapshot().encode(),
            engine.snapshot().encode(),
            "checkpointed state must be bit-identical"
        );
    }

    #[test]
    fn tail_torn_behind_a_checkpoint_drops_stale_segments() {
        use ref_core::resource::Capacity;
        use ref_market::{MarketConfig, MarketEngine};

        let dir = TempDir::new("ckptbehind");
        let market = MarketConfig::new(Capacity::new(vec![8.0, 4.0]).unwrap());
        let config = WalConfig::new(dir.path());
        let mut engine = MarketEngine::new(market).unwrap();
        let all = events(8);
        {
            let mut wal = Wal::open(config.clone(), FaultPlan::none()).unwrap().wal;
            for e in &all {
                wal.append(e).unwrap();
                let _ = engine.apply_now(e.clone());
            }
            wal.checkpoint(&engine.snapshot().encode()).unwrap();
        }
        // Tear the final record: the log now ends at seq 7, *behind* the
        // checkpoint at 8 — that record survives only inside the
        // checkpoint.
        let last = last_segment_path(dir.path()).unwrap().unwrap();
        let len = fs::metadata(&last).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&last)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        // The checkpoint is authoritative; the stale segment (which can
        // no longer reach it) is dropped so the log stays gap-free.
        let rec = Wal::open(config, FaultPlan::none()).unwrap();
        assert_eq!(rec.wal.next_seq(), 8);
        assert!(rec.tail.is_empty());
        let (seq, snapshot) = rec.checkpoint.expect("checkpoint survives");
        assert_eq!(seq, 8);
        let restored = MarketEngine::restore(&snapshot).unwrap();
        assert_eq!(restored.snapshot().encode(), engine.snapshot().encode());
        let (first, read) = read_events(dir.path()).unwrap();
        assert_eq!((first, read.len()), (8, 0), "no gap left behind");
    }

    #[test]
    fn retained_history_survives_checkpoints_for_full_reads() {
        use ref_core::resource::Capacity;
        use ref_market::{MarketConfig, MarketEngine};

        let dir = TempDir::new("retain");
        let market = MarketConfig::new(Capacity::new(vec![8.0, 4.0]).unwrap());
        let config = WalConfig::new(dir.path())
            .with_segment_max_bytes(96)
            .with_retain_history(true);
        let mut engine = MarketEngine::new(market).unwrap();
        let all = events(24);
        let mut wal = Wal::open(config, FaultPlan::none()).unwrap().wal;
        for e in &all {
            wal.append(e).unwrap();
            let _ = engine.apply_now(e.clone());
        }
        wal.checkpoint(&engine.snapshot().encode()).unwrap();
        let (first, read) = wal.read_events().unwrap();
        assert_eq!(first, 0);
        assert_eq!(read, all);
    }

    #[test]
    fn scrub_is_clean_on_a_healthy_log_and_finds_planted_damage() {
        use ref_core::resource::Capacity;
        use ref_market::{MarketConfig, MarketEngine};

        let dir = TempDir::new("scrub");
        let market = MarketConfig::new(Capacity::new(vec![8.0, 4.0]).unwrap());
        let config = WalConfig::new(dir.path())
            .with_segment_max_bytes(96)
            .with_retain_history(true);
        let mut engine = MarketEngine::new(market).unwrap();
        let all = events(24);
        let mut wal = Wal::open(config, FaultPlan::none()).unwrap().wal;
        for e in &all {
            wal.append(e).unwrap();
            let _ = engine.apply_now(e.clone());
        }
        wal.checkpoint(&engine.snapshot().encode()).unwrap();

        let report = wal.scrub().unwrap();
        assert!(
            report.is_clean(),
            "healthy log must scrub clean: {report:?}"
        );
        assert_eq!(report.records, 24);
        assert!(report.segments >= 3);
        assert_eq!(report.checkpoints, 1);

        // Flip one payload byte in the first segment — damage that
        // `Wal::open` would refuse but a live server never re-reads.
        let path = segment_path(dir.path(), 0);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        // And damage the checkpoint body.
        let ckpt = checkpoint_path(dir.path(), 24);
        let mut text = fs::read_to_string(&ckpt).unwrap();
        text.push_str("garbage\n");
        fs::write(&ckpt, text).unwrap();

        let report = scrub(dir.path()).unwrap();
        assert_eq!(report.errors.len(), 2, "{report:?}");
        assert!(!report.is_clean());
    }

    #[test]
    fn scrub_of_missing_dir_is_empty_and_clean() {
        let dir = TempDir::new("scrubmissing");
        let report = scrub(&dir.path().join("nope")).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.segments + report.checkpoints, 0);
    }

    #[test]
    fn scheduled_faults_fire_once_each_at_their_sequences() {
        let dir = TempDir::new("sched");
        let faults = FaultPlan {
            wal_schedule: vec![
                ScheduledWalFault {
                    at_seq: 1,
                    kind: WalFaultKind::FailAppend,
                },
                ScheduledWalFault {
                    at_seq: 2,
                    kind: WalFaultKind::FailSync,
                },
                ScheduledWalFault {
                    at_seq: 4,
                    kind: WalFaultKind::Torn { bytes: 5 },
                },
            ],
            ..FaultPlan::default()
        };
        assert!(faults.is_armed());
        let all = events(6);
        let mut wal = Wal::open(WalConfig::new(dir.path()), faults).unwrap().wal;
        wal.append(&all[0]).unwrap();
        // seq 1: scheduled append failure, then the retry succeeds.
        assert!(wal.append(&all[1]).is_err());
        assert_eq!(wal.append(&all[1]).unwrap(), 1);
        // seq 2: scheduled fsync failure rolls the bytes back, retry ok.
        assert!(wal.append(&all[2]).is_err());
        assert_eq!(wal.append(&all[2]).unwrap(), 2);
        wal.append(&all[3]).unwrap();
        // seq 4: scheduled torn write poisons the log.
        assert!(wal.append(&all[4]).is_err());
        assert!(wal.poisoned());
        drop(wal);
        let rec = Wal::open(WalConfig::new(dir.path()), FaultPlan::none()).unwrap();
        assert_eq!(rec.tail, all[..4].to_vec());
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn damaged_checkpoint_falls_back_to_older_one() {
        use ref_core::resource::Capacity;
        use ref_market::{MarketConfig, MarketEngine};

        let dir = TempDir::new("ckptfall");
        let market = MarketConfig::new(Capacity::new(vec![8.0, 4.0]).unwrap());
        let config = WalConfig::new(dir.path()).with_retain_history(true);
        let mut engine = MarketEngine::new(market).unwrap();
        let all = events(10);
        {
            let mut wal = Wal::open(config.clone(), FaultPlan::none()).unwrap().wal;
            for (i, e) in all.iter().enumerate() {
                wal.append(e).unwrap();
                let _ = engine.apply_now(e.clone());
                if i == 4 {
                    wal.checkpoint(&engine.snapshot().encode()).unwrap();
                }
            }
            wal.checkpoint(&engine.snapshot().encode()).unwrap();
        }
        // Corrupt the newest checkpoint; recovery must fall back to the
        // older one and replay the longer tail.
        let newest = checkpoint_path(dir.path(), 10);
        let mut text = fs::read_to_string(&newest).unwrap();
        text.push_str("garbage\n");
        fs::write(&newest, text).unwrap();
        let rec = Wal::open(config, FaultPlan::none()).unwrap();
        let (seq, _) = rec.checkpoint.expect("older checkpoint");
        assert_eq!(seq, 5);
        assert_eq!(rec.tail, all[5..].to_vec());
    }
}
