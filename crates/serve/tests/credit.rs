//! Credit-market serving invariants.
//!
//! The credit mechanism threads ledger state through every layer the
//! server owns: the wire protocol (per-agent `credit` in queries, ledger
//! totals in `metrics`), the journal (replay must reproduce the ledger
//! bit for bit, because the ledger is a pure function of the event
//! history), the v3 snapshot (WAL checkpoints round-trip it), and the
//! shard router (a credit market only boots when the equal capacity
//! split is exact). Each test pins one of those seams.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ref_core::mechanism::CreditInner;
use ref_core::resource::Capacity;
use ref_market::{MarketConfig, MarketEngine, MechanismKind};
use ref_serve::{shard_market_config, Client, JournalLimit, ServeConfig, Server, Value, WalConfig};

/// Self-cleaning unique temp directory (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ref-credit-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn credit_config() -> MarketConfig {
    // 16 and 8 split exactly across 4 shards (4.0 and 2.0 per shard).
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).unwrap()).with_mechanism(
        MechanismKind::Credit {
            inner: CreditInner::MaxWelfare,
        },
    )
}

#[test]
fn credit_market_exposes_balances_and_ledger_metrics_over_the_wire() {
    let serve_config = ServeConfig::new(credit_config()).with_epoch_interval(None);
    let server = Server::start("127.0.0.1:0", serve_config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.join_truth(1, 1.0, &[0.75, 0.25]).unwrap();
    client.join_truth(2, 1.0, &[0.25, 0.75]).unwrap();
    for _ in 0..10 {
        client.tick().unwrap();
    }

    // Per-agent queries carry the agent's credit balance.
    let reply = client.query_agent(1).unwrap();
    let credit = reply.get("credit").unwrap().as_f64().unwrap();
    assert!(credit.is_finite(), "{reply}");

    // The metrics reply carries ledger totals; conservation holds live.
    let metrics = client.metrics().unwrap();
    let ledger = metrics.get("ledger").unwrap();
    assert_eq!(ledger.get("agents").unwrap().as_u64(), Some(2));
    assert!(
        ledger.get("total").unwrap().as_f64().unwrap().abs() < 1e-9,
        "{metrics}"
    );
    let text = client.metrics_text().unwrap();
    assert!(text.contains("refmarket_ledger_agents 2\n"), "{text}");
    assert!(text.contains("refmarket_credits_accrued"), "{text}");

    // Snapshots taken over the wire are v3 documents.
    let snapshot = client.snapshot().unwrap();
    assert!(
        snapshot.starts_with("refmarket-snapshot v3\n"),
        "{snapshot}"
    );

    // The journal replays to the exact final snapshot: the ledger is a
    // pure function of the replayed event history.
    let report = server.shutdown();
    assert!(!report.journal_overflowed);
    let replayed = ref_serve::replay(credit_config(), &report.journal).unwrap();
    assert_eq!(replayed.snapshot().encode(), report.snapshot);
}

#[test]
fn sharded_credit_journals_replay_per_shard() {
    let serve_config = ServeConfig::new(credit_config())
        .with_epoch_interval(None)
        .with_shards(4)
        .with_journal_limit(JournalLimit(1 << 16));
    let server = Server::start("127.0.0.1:0", serve_config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for agent in 0..12u64 {
        let e0 = 0.2 + 0.05 * agent as f64;
        client.join_truth(agent, 1.0, &[e0, 1.0 - e0]).unwrap();
    }
    for _ in 0..4 {
        client.tick().unwrap();
    }
    // Demand changes re-baseline ledger entries; replay must cross them.
    client.demand(3, Some((1.0, &[0.8, 0.2]))).unwrap();
    client.demand(7, None).unwrap();
    client.leave(5).unwrap();
    for _ in 0..4 {
        client.tick().unwrap();
    }

    let report = server.shutdown();
    assert_eq!(report.shards.len(), 4);
    for shard in &report.shards {
        assert!(!shard.journal_overflowed);
        assert_eq!(shard.metrics.protocol_errors, 0);
        assert!(
            shard.snapshot.starts_with("refmarket-snapshot v3\n"),
            "shard {} snapshot is not v3",
            shard.shard
        );
        let mut offline = MarketEngine::new(shard_market_config(&credit_config(), 4)).unwrap();
        offline.submit_all(shard.journal.iter().cloned());
        while offline.pump().is_err() {}
        assert_eq!(
            offline.snapshot().encode(),
            shard.snapshot,
            "shard {} diverged from its offline replay",
            shard.shard
        );
    }
}

#[test]
fn sharded_credit_wal_recovery_round_trips_v3_snapshots() {
    let dir = TempDir::new("wal");
    let serve_config = || {
        ServeConfig::new(credit_config())
            .with_epoch_interval(None)
            .with_shards(4)
            .with_wal(WalConfig::new(dir.path()).with_checkpoint_every(5))
    };

    let server = Server::start("127.0.0.1:0", serve_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for agent in 0..12u64 {
        client.join_truth(agent, 1.0, &[0.6, 0.4]).unwrap();
    }
    for _ in 0..5 {
        client.tick().unwrap();
    }
    let report = server.shutdown();

    // Cold recovery restores every shard — ledger included — bit for bit
    // from v3 checkpoints plus WAL tail replay.
    let recovered = Server::recover("127.0.0.1:0", serve_config()).unwrap();
    let recovered_report = recovered.shutdown();
    for (before, after) in report.shards.iter().zip(&recovered_report.shards) {
        assert_eq!(before.shard, after.shard);
        assert_eq!(
            before.snapshot, after.snapshot,
            "shard {} changed across recovery",
            before.shard
        );
    }
}

#[test]
fn credit_with_an_inexact_shard_split_is_rejected_loudly() {
    // (1.0 / 49.0) * 49.0 != 1.0 in IEEE doubles: the per-shard equal
    // shares would not sum back to the advertised capacity, so the
    // launch must refuse instead of serving a subtly skewed market.
    let config = MarketConfig::new(Capacity::new(vec![1.0, 8.0]).unwrap()).with_mechanism(
        MechanismKind::Credit {
            inner: CreditInner::MaxWelfare,
        },
    );
    let serve_config = ServeConfig::new(config)
        .with_epoch_interval(None)
        .with_shards(49);
    let err = Server::start("127.0.0.1:0", serve_config).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let msg = err.to_string();
    assert!(msg.contains("exact capacity split"), "{msg}");
    assert!(msg.contains("resource 0"), "{msg}");
}

#[test]
fn query_reply_reflects_persistent_imbalance() {
    // One agent persistently over-served, one under-served: force it by
    // reporting utilities externally. With GroundTruth agents and a
    // converged market the balances hover near zero, so instead check
    // the zero-sum structure of whatever imbalance the run produced.
    let serve_config = ServeConfig::new(credit_config()).with_epoch_interval(None);
    let server = Server::start("127.0.0.1:0", serve_config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.join_truth(1, 1.0, &[0.9, 0.1]).unwrap();
    client.join_truth(2, 1.0, &[0.1, 0.9]).unwrap();
    for _ in 0..16 {
        client.tick().unwrap();
    }
    let c1 = credit_of(&mut client, 1);
    let c2 = credit_of(&mut client, 2);
    assert!((c1 + c2).abs() < 1e-9, "balances not zero-sum: {c1} {c2}");
    server.shutdown();
}

fn credit_of(client: &mut Client, agent: u64) -> f64 {
    client
        .query_agent(agent)
        .unwrap()
        .get("credit")
        .and_then(Value::as_f64)
        .unwrap()
}
