//! Fault-injection integration tests: a live TCP server with an armed
//! [`FaultPlan`] must degrade exactly as the durability and supervision
//! contracts promise — no lost state, no wedged threads, no lying
//! responses.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use ref_core::resource::Capacity;
use ref_market::MarketConfig;
use ref_serve::{wal, Client, ClientError, FaultPlan, ServeConfig, Server, WalConfig};

/// Self-cleaning unique temp directory (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ref-faults-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn market() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).unwrap())
}

fn code_of(err: &ClientError) -> Option<&str> {
    match err {
        ClientError::Server { code, .. } => Some(code.as_str()),
        _ => None,
    }
}

#[test]
fn transient_wal_append_failure_rejects_the_event_then_recovers() {
    let dir = TempDir::new("appfail");
    let config = ServeConfig::new(market())
        .with_epoch_interval(None)
        .with_wal(WalConfig::new(dir.path()))
        .with_faults(FaultPlan {
            fail_append_at: Some(1),
            ..FaultPlan::default()
        });
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client.join_external(1).unwrap();
    // Seq 1's append fails: the event is rejected fail-closed, with the
    // engine state untouched.
    let err = client.join_external(2).unwrap_err();
    assert_eq!(code_of(&err), Some("wal"), "{err}");
    let q = client.query().unwrap();
    assert_eq!(q.get("agents").unwrap().as_array().unwrap().len(), 1);
    // The fault is transient: retrying the same event succeeds.
    client.join_external(2).unwrap();

    let m = client.metrics().unwrap();
    let server_metrics = m.get("server").unwrap();
    assert_eq!(
        server_metrics.get("wal_errors").unwrap().as_u64(),
        Some(1),
        "{m:?}"
    );
    assert_eq!(
        server_metrics.get("wal_appends").unwrap().as_u64(),
        Some(2),
        "{m:?}"
    );

    let report = server.shutdown();
    assert_eq!(report.journal.len(), 2);
    // The on-disk log is exactly the applied events — never ahead.
    let (first, events) = wal::read_events(dir.path()).unwrap();
    assert_eq!(first, 0);
    assert_eq!(events, report.journal);
    let replayed = ref_serve::replay(market(), &events).unwrap();
    assert_eq!(replayed.snapshot().encode(), report.snapshot);
}

#[test]
fn ticker_panic_degrades_the_server_but_reads_and_recovery_survive() {
    let dir = TempDir::new("tickpanic");
    let config = ServeConfig::new(market())
        .with_epoch_interval(None)
        .with_wal(WalConfig::new(dir.path()))
        .with_faults(FaultPlan {
            panic_on_event: Some(1),
            ..FaultPlan::default()
        });
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client.join_external(1).unwrap();
    // Seq 1 is appended durably, then the ticker panics before applying
    // it: the carrying request's reply channel dies.
    let err = client.join_external(2).unwrap_err();
    assert_eq!(code_of(&err), Some("internal"), "{err}");

    // The supervisor flips the server into degraded mode: mutations are
    // refused...
    let err = client.join_external(3).unwrap_err();
    assert_eq!(code_of(&err), Some("degraded"), "{err}");
    let err = client.tick().unwrap_err();
    assert_eq!(code_of(&err), Some("degraded"), "{err}");
    // ...but reads keep serving.
    let q = client.query().unwrap();
    assert_eq!(q.get("agents").unwrap().as_array().unwrap().len(), 1);
    client.snapshot().unwrap();
    let m = client.metrics().unwrap();
    let server_metrics = m.get("server").unwrap();
    assert_eq!(
        server_metrics.get("ticker_panics").unwrap().as_u64(),
        Some(1)
    );
    assert_eq!(server_metrics.get("degraded").unwrap().as_u64(), Some(1));

    // Shutdown still drains; the live engine never saw the orphaned
    // event...
    let report = server.shutdown();
    assert_eq!(report.journal.len(), 1);
    // ...but the WAL kept it, so recovery replays it: crash-then-recover
    // loses nothing that was admitted and durably logged.
    let recovered = Server::recover(
        "127.0.0.1:0",
        ServeConfig::new(market())
            .with_epoch_interval(None)
            .with_wal(WalConfig::new(dir.path())),
    )
    .unwrap();
    let mut client = Client::connect(recovered.addr()).unwrap();
    let q = client.query().unwrap();
    assert_eq!(
        q.get("agents").unwrap().as_array().unwrap().len(),
        2,
        "recovery must replay the durable-but-unapplied event"
    );
    recovered.shutdown();
}

#[test]
fn reader_panic_kills_only_its_own_connection() {
    let config = ServeConfig::new(market())
        .with_epoch_interval(None)
        .with_faults(FaultPlan {
            panic_on_line_token: Some("987654321".to_string()),
            ..FaultPlan::default()
        });
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut victim = Client::connect(server.addr()).unwrap();
    let mut bystander = Client::connect(server.addr()).unwrap();

    victim.join_external(1).unwrap();
    bystander.join_external(2).unwrap();

    // The poisoned line panics its reader thread; the connection dies
    // without a reply.
    assert!(victim.leave(987_654_321).is_err());

    // Every other connection keeps working.
    bystander.tick().unwrap();
    let q = bystander.query().unwrap();
    assert_eq!(q.get("agents").unwrap().as_array().unwrap().len(), 2);
    let m = bystander.metrics().unwrap();
    let server_metrics = m.get("server").unwrap();
    assert_eq!(
        server_metrics.get("reader_panics").unwrap().as_u64(),
        Some(1)
    );
    // The poisoned connection stays dead.
    assert!(victim.tick().is_err());

    // The drop guard released the panicked connection's slot, so the
    // drain does not wait on a ghost connection.
    server.shutdown();
}
