//! Replication end-to-end: a live primary/standby pair over real TCP.
//! Covers bit-identical mirroring, explicit promotion with fencing of
//! the deposed primary, automatic promotion on heartbeat lapse with
//! client failover, and the divergence invariant — a corrupted standby
//! is fenced, never promoted.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ref_core::resource::Capacity;
use ref_market::MarketConfig;
use ref_serve::{
    CallOpts, Client, ClientError, FaultPlan, ReplConfig, Role, ServeConfig, Server, Value,
    WalConfig,
};

/// Self-cleaning unique temp directory (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ref-repl-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn market() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).unwrap())
}

/// Polls `check` until it returns true or `deadline` elapses.
fn wait_for(what: &str, deadline: Duration, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out after {deadline:?} waiting for {what}");
}

fn ping_u64(client: &mut Client, field: &str) -> u64 {
    client
        .ping()
        .unwrap()
        .get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("ping reply missing {field}"))
}

fn ping_role(client: &mut Client) -> String {
    client
        .ping()
        .unwrap()
        .get("role")
        .and_then(Value::as_str)
        .expect("ping reply missing role")
        .to_string()
}

/// Starts a primary with a WAL and a replication listener.
fn start_primary(dir: &Path, epoch: Option<Duration>) -> Server {
    let config = ServeConfig::new(market())
        .with_epoch_interval(epoch)
        .with_wal(WalConfig::new(dir))
        .with_repl(ReplConfig::primary("127.0.0.1:0"));
    Server::start("127.0.0.1:0", config).unwrap()
}

/// Starts a standby of `primary`, with its own WAL directory.
fn start_standby(dir: &Path, primary: &Server, repl: ReplConfig) -> Server {
    let config = ServeConfig::new(market())
        .with_epoch_interval(primary.config().epoch_interval)
        .with_wal(WalConfig::new(dir))
        .with_repl(repl);
    Server::start("127.0.0.1:0", config).unwrap()
}

fn standby_config(primary: &Server) -> ReplConfig {
    ReplConfig::standby("127.0.0.1:0", primary.repl_addr().unwrap().to_string())
}

#[test]
fn standby_mirrors_the_primary_bit_identically() {
    let (pdir, sdir) = (TempDir::new("mirror-p"), TempDir::new("mirror-s"));
    let primary = start_primary(pdir.path(), None);
    let standby = start_standby(
        sdir.path(),
        &primary,
        standby_config(&primary).with_auto_promote(false),
    );

    let mut client = Client::connect(primary.addr()).unwrap();
    for agent in 1u64..=3 {
        client.join_external(agent).unwrap();
        for i in 0..20 {
            client
                .observe(agent, &[1.0 + agent as f64, 2.0], 0.5 + 0.05 * i as f64)
                .unwrap();
        }
    }

    // Quiesce, then wait for the standby to reach the primary's tail.
    let mut pping = Client::connect(primary.addr()).unwrap();
    let mut sping = Client::connect(standby.addr()).unwrap();
    let tail = ping_u64(&mut pping, "wal_seq");
    assert!(tail >= 63, "expected 63 events, saw {tail}");
    wait_for("standby catch-up", Duration::from_secs(10), || {
        ping_u64(&mut sping, "wal_seq") == tail
    });
    assert_eq!(ping_role(&mut sping), "standby");
    assert_eq!(ping_role(&mut pping), "primary");
    assert_eq!(primary.metrics().standby_connected, 1);
    assert_eq!(primary.metrics().repl_records_sent, tail);

    // Same events through the same engine: snapshots are byte-identical.
    let standby_report = standby.shutdown();
    let primary_report = primary.shutdown();
    assert_eq!(standby_report.snapshot, primary_report.snapshot);
    assert_eq!(standby_report.metrics.protocol_errors, 0);
    assert_eq!(primary_report.metrics.protocol_errors, 0);
}

#[test]
fn late_joining_standby_catches_up_from_checkpoint_and_log() {
    let (pdir, sdir) = (TempDir::new("late-p"), TempDir::new("late-s"));
    let primary = start_primary(pdir.path(), None);

    // History exists before the standby is even born.
    let mut client = Client::connect(primary.addr()).unwrap();
    client.join_external(1).unwrap();
    for i in 0..30 {
        client
            .observe(1, &[2.0, 1.0], 1.0 + 0.01 * i as f64)
            .unwrap();
    }

    let standby = start_standby(
        sdir.path(),
        &primary,
        standby_config(&primary).with_auto_promote(false),
    );
    let mut pping = Client::connect(primary.addr()).unwrap();
    let mut sping = Client::connect(standby.addr()).unwrap();
    let tail = ping_u64(&mut pping, "wal_seq");
    wait_for("late standby catch-up", Duration::from_secs(10), || {
        ping_u64(&mut sping, "wal_seq") == tail
    });

    let standby_report = standby.shutdown();
    let primary_report = primary.shutdown();
    assert_eq!(standby_report.snapshot, primary_report.snapshot);
}

#[test]
fn explicit_promote_fences_the_deposed_primary() {
    let (pdir, sdir) = (TempDir::new("promote-p"), TempDir::new("promote-s"));
    let primary = start_primary(pdir.path(), None);
    let standby = start_standby(
        sdir.path(),
        &primary,
        standby_config(&primary).with_auto_promote(false),
    );

    let mut client = Client::connect(primary.addr()).unwrap();
    client.join_external(1).unwrap();
    client.observe(1, &[1.0, 1.0], 1.0).unwrap();

    let mut pping = Client::connect(primary.addr()).unwrap();
    let mut sping = Client::connect(standby.addr()).unwrap();
    let tail = ping_u64(&mut pping, "wal_seq");
    wait_for("standby catch-up", Duration::from_secs(10), || {
        ping_u64(&mut sping, "wal_seq") == tail
    });

    // Mutations against a standby are redirected, not executed.
    let mut on_standby = Client::connect(standby.addr()).unwrap();
    match on_standby.join_external(9) {
        Err(ClientError::Server { code, leader, .. }) => {
            assert_eq!(code, "not_primary");
            assert_eq!(leader.as_deref(), Some(primary.addr().to_string().as_str()));
        }
        other => panic!("standby accepted a mutation: {other:?}"),
    }

    let reply = on_standby.promote().unwrap();
    assert_eq!(reply.get("role").and_then(Value::as_str), Some("primary"));
    assert_eq!(reply.get("term").and_then(Value::as_u64), Some(1));
    assert_eq!(standby.role(), Role::Primary);

    // The deposed primary hears the higher term and fences itself: its
    // role flips and mutations are refused — no split brain.
    wait_for("old primary fenced", Duration::from_secs(10), || {
        primary.role() == Role::Fenced
    });
    match client.observe(1, &[1.0, 1.0], 1.0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "fenced"),
        other => panic!("fenced primary accepted a mutation: {other:?}"),
    }
    assert_eq!(primary.metrics().fenced, 1);

    // The new primary takes writes.
    on_standby.join_external(9).unwrap();
    on_standby.observe(9, &[1.0, 1.0], 2.0).unwrap();

    standby.shutdown();
    primary.shutdown();
}

#[test]
fn heartbeat_lapse_auto_promotes_and_the_client_fails_over() {
    let (pdir, sdir) = (TempDir::new("auto-p"), TempDir::new("auto-s"));
    let primary = start_primary(pdir.path(), None);
    let standby = start_standby(
        sdir.path(),
        &primary,
        standby_config(&primary)
            .with_heartbeat_interval(Duration::from_millis(10))
            .with_election_timeout(Duration::from_millis(150)),
    );
    let primary_addr = primary.addr().to_string();
    let standby_addr = standby.addr().to_string();

    let mut client = Client::connect_seeds(&[primary_addr, standby_addr.clone()]).unwrap();
    client.join_external(1).unwrap();
    client.observe(1, &[1.0, 1.0], 1.0).unwrap();

    let mut sping = Client::connect(standby.addr()).unwrap();
    wait_for("standby catch-up", Duration::from_secs(10), || {
        ping_u64(&mut sping, "wal_seq") == 2
    });

    // Kill the primary: heartbeats stop, the standby's election timer
    // lapses, and it promotes itself.
    primary.shutdown();
    wait_for("auto-promotion", Duration::from_secs(10), || {
        standby.role() == Role::Primary
    });
    assert_eq!(standby.term(), 1);
    assert_eq!(standby.metrics().promotions, 1);

    // The client's next call walks its seed list and lands on the new
    // primary without the caller doing anything.
    let observe = Value::obj(vec![
        ("op", Value::str("observe")),
        ("agent", Value::from_u64(1)),
        ("allocation", Value::num_array(&[2.0, 1.0])),
        ("performance", Value::Num(1.5)),
    ]);
    let opts = CallOpts::default()
        .with_retries(50)
        .with_deadline(Duration::from_secs(10));
    let (reply, _retries) = client.call_with(&observe, &opts).unwrap();
    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(client.current_addr(), standby_addr);

    let report = standby.shutdown();
    assert_eq!(report.metrics.protocol_errors, 0);
}

#[test]
fn divergent_standby_is_fenced_never_promoted() {
    let (pdir, sdir) = (TempDir::new("diverge-p"), TempDir::new("diverge-s"));
    // Epochs run so the fingerprint channel is live.
    let primary = start_primary(pdir.path(), Some(Duration::from_millis(2)));
    // The standby silently drops its 3rd replicated record: its state
    // forks from the primary's while its WAL looks healthy.
    let standby_cfg = ServeConfig::new(market())
        .with_epoch_interval(Some(Duration::from_millis(2)))
        .with_wal(WalConfig::new(sdir.path()))
        .with_repl(
            standby_config(&primary)
                .with_heartbeat_interval(Duration::from_millis(10))
                .with_election_timeout(Duration::from_millis(150)),
        )
        .with_faults(FaultPlan {
            corrupt_standby_at: Some(3),
            ..FaultPlan::default()
        });
    let standby = Server::start("127.0.0.1:0", standby_cfg).unwrap();

    let mut client = Client::connect(primary.addr()).unwrap();
    client.join_external(1).unwrap();
    for i in 0..20 {
        client
            .observe(1, &[1.0, 1.0], 1.0 + 0.1 * i as f64)
            .unwrap();
    }

    // The next epoch fingerprint the standby acks is wrong: the primary
    // detects the fork and fences the replica instead of trusting it.
    wait_for("divergence detected", Duration::from_secs(10), || {
        primary.metrics().divergences >= 1
    });
    wait_for("standby fenced", Duration::from_secs(10), || {
        standby.role() == Role::Fenced
    });
    assert_eq!(primary.metrics().standby_connected, 0);

    // Even with the primary gone and auto-promotion armed, a fenced
    // replica must never seize leadership.
    primary.shutdown();
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(standby.role(), Role::Fenced);
    let mut on_standby = Client::connect(standby.addr()).unwrap();
    match on_standby.promote() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "fenced"),
        other => panic!("fenced standby promoted: {other:?}"),
    }
    standby.shutdown();
}
