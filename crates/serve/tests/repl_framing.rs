//! Replication-stream framing properties, mirroring `wal_recovery`'s
//! crash model on the wire: a frame is only ever surfaced whole and
//! checksum-verified. Arbitrary truncation at any byte offset yields
//! `Incomplete` (read more), a flipped bit anywhere in the frame yields
//! `Corrupt` (drop the connection) or `Incomplete` — never a decoded
//! payload — so a standby can never apply a partial or damaged record.

use proptest::prelude::*;

use ref_serve::{decode_frame, encode_frame, FrameDecode};

/// Decodes every complete frame from a byte stream, stopping at the
/// first incomplete or corrupt tail. Returns the payloads and what the
/// tail looked like.
fn decode_stream(mut buf: &[u8]) -> (Vec<Vec<u8>>, FrameDecode) {
    let mut frames = Vec::new();
    loop {
        match decode_frame(buf) {
            FrameDecode::Complete { payload, consumed } => {
                frames.push(payload);
                buf = &buf[consumed..];
                if buf.is_empty() {
                    return (frames, FrameDecode::Incomplete);
                }
            }
            tail => return (frames, tail),
        }
    }
}

proptest! {
    /// Encode → decode round-trips any payload, consuming exactly the
    /// frame's bytes.
    #[test]
    fn round_trips_any_payload(payload in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let frame = encode_frame(&payload);
        match decode_frame(&frame) {
            FrameDecode::Complete { payload: got, consumed } => {
                prop_assert_eq!(got, payload);
                prop_assert_eq!(consumed, frame.len());
            }
            other => prop_assert!(false, "expected Complete, got {:?}", other),
        }
    }

    /// Truncating a stream of frames at *any* byte offset yields exactly
    /// the complete prefix frames and an `Incomplete` tail — a partial
    /// record is never surfaced, at any cut point.
    #[test]
    fn truncation_at_any_offset_never_yields_a_partial_record(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255u8, 0..64), 1..5),
        cut_unit in 0.0f64..1.0,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for payload in &payloads {
            stream.extend_from_slice(&encode_frame(payload));
            boundaries.push(stream.len());
        }
        let cut = ((stream.len() as f64) * cut_unit) as usize;
        let (frames, tail) = decode_stream(&stream[..cut]);
        // Exactly the frames whose final byte survived the cut.
        let expect = boundaries.iter().filter(|&&end| end <= cut).count();
        prop_assert_eq!(frames.len(), expect);
        for (frame, payload) in frames.iter().zip(payloads.iter()) {
            prop_assert_eq!(frame, payload);
        }
        prop_assert_eq!(tail, FrameDecode::Incomplete);
    }

    /// Flipping any single bit of a frame is detected: the CRC (payload
    /// and checksum bytes; CRC32 catches all single-bit errors) or the
    /// length check (header bytes) refuses the frame. Decoding never
    /// produces a payload from a damaged frame.
    #[test]
    fn any_single_bit_flip_is_detected(
        payload in proptest::collection::vec(0u8..=255u8, 0..256),
        flip_unit in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut frame = encode_frame(&payload);
        let offset = ((frame.len() as f64) * flip_unit) as usize % frame.len();
        frame[offset] ^= 1 << bit;
        match decode_frame(&frame) {
            // Length-field flips can point past the buffer (read more —
            // and the stream then dies on the CRC or the peer's close);
            // everything else must fail the checksum or length bound
            // outright.
            FrameDecode::Incomplete => prop_assert!(offset < 4, "payload flip read as short"),
            FrameDecode::Corrupt(_) => {}
            FrameDecode::Complete { .. } => {
                prop_assert!(false, "bit flip at byte {} went undetected", offset)
            }
        }
    }

    /// Decoding arbitrary garbage never panics and never fabricates a
    /// frame longer than the input.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..128)) {
        match decode_frame(&bytes) {
            FrameDecode::Complete { consumed, .. } => prop_assert!(consumed <= bytes.len()),
            FrameDecode::Incomplete | FrameDecode::Corrupt(_) => {}
        }
    }
}
