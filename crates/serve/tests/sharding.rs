//! Sharded serving invariants.
//!
//! Three layers, mirroring the sharding design (DESIGN.md §11):
//!
//! 1. **Ring laws** (proptests): every agent id maps to exactly one
//!    shard; growing the ring from `k` to `k + 1` shards remaps only
//!    about `1 / (k + 1)` of the keys; and the placement is a pure
//!    function of `(shards, seed)` — pinned against goldens captured
//!    from a separate process so two routers built on different hosts
//!    agree on every routing decision.
//! 2. **Transport purity, sharded** (proptest): random op sequences
//!    through a live 4-shard server; each shard's journal replayed
//!    offline through `submit_all` on that shard's starting config must
//!    land byte-for-byte on that shard's final snapshot. Coordinator
//!    reallotments are journaled events, so replay crosses them for
//!    free.
//! 3. **Per-shard durability**: a WAL-enabled sharded server recovers
//!    from its `shard-{k}` directories with every shard bit-identical.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use ref_core::resource::Capacity;
use ref_market::{MarketConfig, MarketEngine};
use ref_serve::{
    shard_market_config, Client, ClientError, HashRing, JournalLimit, ServeConfig, Server,
    WalConfig,
};

/// Self-cleaning unique temp directory (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ref-shard-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

// ---------------------------------------------------------------------------
// 1. Ring laws
// ---------------------------------------------------------------------------

/// Placements captured from `HashRing` itself in a separate process
/// (regenerate with `cargo test -p ref-serve --test sharding -- --ignored
/// print_ring_goldens --nocapture`). Each entry is `(shards, seed)` and
/// the owning shard of agents `0..16`. If the hash or vnode scheme ever
/// changes these MUST change too — that is the point: a router upgraded
/// on one host would route differently than its peers, so the goldens
/// turn an accidental scheme change into a loud test failure.
const RING_GOLDENS: &[(usize, u64, [u32; 16])] = &[
    (4, 0x5EED, GOLDEN_4_5EED),
    (3, 42, GOLDEN_3_42),
    (8, 0xDEAD_BEEF, GOLDEN_8_DEADBEEF),
];

const GOLDEN_4_5EED: [u32; 16] = [1, 3, 0, 2, 0, 3, 3, 0, 1, 3, 0, 1, 1, 1, 3, 1];
const GOLDEN_3_42: [u32; 16] = [1, 0, 0, 2, 2, 0, 1, 0, 0, 2, 1, 1, 2, 0, 1, 0];
const GOLDEN_8_DEADBEEF: [u32; 16] = [1, 4, 6, 0, 0, 5, 6, 6, 2, 2, 7, 1, 1, 4, 7, 1];

#[test]
#[ignore = "golden regeneration helper; prints, never asserts"]
fn print_ring_goldens() {
    for &(shards, seed, _) in RING_GOLDENS {
        let ring = HashRing::new(shards, seed);
        let placements: Vec<u32> = (0..16).map(|a| ring.shard_of(a) as u32).collect();
        println!("({shards}, {seed:#x}): {placements:?}");
    }
}

#[test]
fn ring_placement_matches_cross_process_goldens() {
    for &(shards, seed, ref golden) in RING_GOLDENS {
        let ring = HashRing::new(shards, seed);
        let placements: Vec<u32> = (0..16).map(|a| ring.shard_of(a) as u32).collect();
        assert_eq!(
            &placements[..],
            &golden[..],
            "ring placement drifted for shards={shards} seed={seed:#x}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Totality: every id maps to exactly one shard, stably, and a ring
    /// rebuilt from the same `(shards, seed)` agrees.
    #[test]
    fn every_agent_maps_to_exactly_one_shard(
        shards in 1usize..12,
        seed in 0u64..u64::MAX,
        agent in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(shards, seed);
        let owner = ring.shard_of(agent);
        prop_assert!(owner < shards);
        prop_assert_eq!(owner, ring.shard_of(agent));
        prop_assert_eq!(owner, HashRing::new(shards, seed).shard_of(agent));
    }

    /// Minimal disruption: growing `k -> k + 1` shards moves about
    /// `1 / (k + 1)` of the keys — the new shard's fair share — not the
    /// `k / (k + 1)` a mod-hash would.
    #[test]
    fn growing_the_ring_remaps_a_bounded_fraction(
        shards in 1usize..10,
        seed in 0u64..u64::MAX,
    ) {
        const KEYS: u64 = 2000;
        let old = HashRing::new(shards, seed);
        let new = HashRing::new(shards + 1, seed);
        let moved = (0..KEYS)
            .filter(|&agent| old.shard_of(agent) != new.shard_of(agent))
            .count();
        // Expect ~KEYS / (k + 1) moves; 1.6x slack plus an absolute
        // floor absorbs vnode-count variance at small k.
        let bound = (1.6 / (shards as f64 + 1.0) + 0.05) * KEYS as f64;
        prop_assert!(
            (moved as f64) <= bound,
            "{moved} of {KEYS} keys moved going {shards} -> {} shards (bound {bound:.0})",
            shards + 1
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Transport purity, sharded
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    JoinTruth { agent: u64, e0: f64 },
    JoinExternal { agent: u64 },
    Leave { agent: u64 },
    Demand { agent: u64, e0: Option<f64> },
    Observe { agent: u64, a0: f64, perf: f64 },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Agent ids range over 0..12 so a 4-shard ring sees several agents
    // per shard and several empty-shard epochs.
    (0u8..8, 0u64..12, 0.1f64..0.9, 0.5f64..12.0, 0.1f64..5.0).prop_map(
        |(selector, agent, e0, a0, perf)| match selector {
            0 => Op::JoinTruth { agent, e0 },
            1 => Op::JoinExternal { agent },
            2 => Op::Leave { agent },
            3 => Op::Demand {
                agent,
                e0: Some(e0),
            },
            4 => Op::Demand { agent, e0: None },
            5 => Op::Observe { agent, a0, perf },
            // Weight ticks up so most sequences run a few epochs and
            // the coordinator gets rounds to reallot capacity.
            _ => Op::Tick,
        },
    )
}

fn config() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).unwrap())
}

/// Issues one op; engine-level rejections (duplicate joins, unknown
/// agents) are expected and fine — they are journaled too.
fn issue(client: &mut Client, op: &Op) {
    let outcome = match op {
        Op::JoinTruth { agent, e0 } => client.join_truth(*agent, 1.0, &[*e0, 1.0 - *e0]),
        Op::JoinExternal { agent } => client.join_external(*agent),
        Op::Leave { agent } => client.leave(*agent),
        Op::Demand { agent, e0 } => {
            let truth = e0.map(|e0| (1.0, vec![e0, 1.0 - e0]));
            client.demand(*agent, truth.as_ref().map(|(s, e)| (*s, e.as_slice())))
        }
        Op::Observe { agent, a0, perf } => client.observe(*agent, &[*a0, 1.0], *perf),
        Op::Tick => client.tick(),
    };
    match outcome {
        Ok(_) => {}
        Err(ClientError::Server { ref code, .. }) if code == "market" => {}
        Err(e) => panic!("unexpected transport failure for {op:?}: {e}"),
    }
}

const SHARDS: usize = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A sharded server is four pure transports: each shard's journal,
    /// replayed offline through `submit_all` against the shard's
    /// starting config (the equal capacity split), reproduces that
    /// shard's final snapshot byte for byte — coordinator reallotments
    /// included, because they are journaled `CapacityRealloted` events.
    #[test]
    fn sharded_journals_replay_to_per_shard_snapshots(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let serve_config = ServeConfig::new(config())
            .with_epoch_interval(None)
            .with_shards(SHARDS)
            .with_journal_limit(JournalLimit(1 << 16));
        let server = Server::start("127.0.0.1:0", serve_config).unwrap();
        let ring = HashRing::new(SHARDS, 0x5EED);
        let mut client = Client::connect(server.addr()).unwrap();
        for op in &ops {
            issue(&mut client, op);
        }
        let report = server.shutdown();
        prop_assert_eq!(report.shards.len(), SHARDS);
        prop_assert_eq!(ring.shards(), SHARDS);

        for shard in &report.shards {
            prop_assert!(!shard.journal_overflowed);
            prop_assert_eq!(shard.metrics.protocol_errors, 0);
            let mut offline = MarketEngine::new(shard_market_config(&config(), SHARDS)).unwrap();
            offline.submit_all(shard.journal.iter().cloned());
            while offline.pump().is_err() {}
            prop_assert_eq!(
                offline.snapshot().encode(),
                shard.snapshot.clone(),
                "shard {} diverged from its offline replay",
                shard.shard
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Per-shard durability
// ---------------------------------------------------------------------------

#[test]
fn sharded_wal_recovery_restores_every_shard() {
    let dir = TempDir::new("wal");
    let serve_config = || {
        ServeConfig::new(config())
            .with_epoch_interval(None)
            .with_shards(SHARDS)
            .with_wal(WalConfig::new(dir.path()).with_checkpoint_every(5))
    };

    let server = Server::start("127.0.0.1:0", serve_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for agent in 0..12u64 {
        client
            .join_truth(agent, 1.0, &[0.6, 0.4])
            .expect("join over the wire");
    }
    for _ in 0..3 {
        client.tick().expect("tick over the wire");
    }
    let report = server.shutdown();
    assert_eq!(report.shards.len(), SHARDS);

    // Every shard got its own WAL directory.
    for shard in 0..SHARDS {
        let shard_dir = dir.path().join(format!("shard-{shard}"));
        assert!(shard_dir.is_dir(), "missing WAL dir for shard {shard}");
    }

    // Cold recovery lands every shard on its pre-crash snapshot.
    let recovered = Server::recover("127.0.0.1:0", serve_config()).unwrap();
    let recovered_report = recovered.shutdown();
    for (before, after) in report.shards.iter().zip(&recovered_report.shards) {
        assert_eq!(before.shard, after.shard);
        assert_eq!(
            before.snapshot, after.snapshot,
            "shard {} changed across recovery",
            before.shard
        );
    }
}

// ---------------------------------------------------------------------------
// 4. Client behavior under shard failures
// ---------------------------------------------------------------------------

/// A scripted one-connection server: answers the first
/// `unavailable_replies` request lines with `shard_unavailable`, then
/// everything after with an ok reply. Returns the bound address and a
/// handle yielding how many requests it served.
fn flapping_shard_server(
    unavailable_replies: usize,
) -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
    use std::io::{BufRead, BufReader, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut line = String::new();
        let mut served = 0usize;
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            served += 1;
            let reply = if served <= unavailable_replies {
                r#"{"ok":false,"error":"shard_unavailable","shard":1,"detail":"the owning shard is down; retry after backoff","retry_after_ms":5}"#
            } else {
                r#"{"ok":true,"epoch":7}"#
            };
            writeln!(writer, "{reply}").unwrap();
            writer.flush().unwrap();
            line.clear();
        }
        served
    });
    (addr, handle)
}

#[test]
fn call_with_backs_off_through_shard_unavailable() {
    use ref_serve::{CallOpts, Value};
    use std::time::{Duration, Instant};

    let (addr, server) = flapping_shard_server(2);
    let mut client = Client::connect(addr).unwrap();
    let request = Value::obj(vec![
        ("op", Value::str("query")),
        ("agent", Value::from_u64(3)),
    ]);
    let opts = CallOpts::default().with_seed(7);
    let started = Instant::now();
    let (reply, retries) = client
        .call_with(&request, &opts)
        .expect("shard_unavailable must be retried, not surfaced");
    // Two rejections ridden out on the same connection (no redial: the
    // agent cannot move off its shard), each slept at least the
    // server's 5ms retry hint.
    assert_eq!(retries, 2);
    assert_eq!(reply.get("epoch").and_then(Value::as_u64), Some(7));
    assert!(
        started.elapsed() >= Duration::from_millis(10),
        "backoff ignored the retry_after_ms floor: {:?}",
        started.elapsed()
    );
    drop(client);
    assert_eq!(server.join().unwrap(), 3, "client redialed mid-backoff");
}

#[test]
fn call_with_surfaces_shard_unavailable_once_retries_exhaust() {
    use ref_serve::CallOpts;

    let (addr, server) = flapping_shard_server(usize::MAX);
    let mut client = Client::connect(addr).unwrap();
    let opts = CallOpts::default().with_retries(2).with_seed(7);
    let request = ref_serve::Value::obj(vec![("op", ref_serve::Value::str("tick"))]);
    let err = client.call_with(&request, &opts).unwrap_err();
    match err {
        ClientError::Server { code, shard, .. } => {
            assert_eq!(code, "shard_unavailable");
            assert_eq!(shard, Some(1));
        }
        other => panic!("expected the server rejection, got {other:?}"),
    }
    drop(client);
    assert_eq!(server.join().unwrap(), 3);
}
