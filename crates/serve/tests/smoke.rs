//! End-to-end smoke: concurrent clients over real TCP, over-offered load,
//! graceful drain, and byte-identical offline replay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ref_core::resource::Capacity;
use ref_market::MarketConfig;
use ref_serve::{Client, ClientError, Quotas, ServeConfig, Server, Value};

fn market() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![32.0, 16.0]).unwrap())
}

#[test]
fn four_concurrent_clients_full_lifecycle_replays_bit_identically() {
    let config = ServeConfig::new(market()).with_epoch_interval(Some(Duration::from_millis(1)));
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        for worker in 0u64..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let agent = worker + 1;
                client.join_external(agent).unwrap();
                for i in 0..10 {
                    client
                        .observe(agent, &[1.0 + worker as f64, 2.0], 0.5 + 0.1 * i as f64)
                        .unwrap();
                    let reply = client.query_agent(agent).unwrap();
                    assert_eq!(reply.get("agent").unwrap().as_u64(), Some(agent));
                }
                client.demand(agent, None).unwrap();
                client.observe(agent, &[2.0, 1.0], 1.25).unwrap();
                let market_wide = client.query().unwrap();
                assert!(market_wide.get("epoch").unwrap().as_u64().is_some());
                if worker % 2 == 0 {
                    client.leave(agent).unwrap();
                }
            });
        }
    });

    let report = server.shutdown();
    assert_eq!(report.metrics.protocol_errors, 0);
    assert!(report.metrics.accepted > 0);
    assert!(!report.journal_overflowed);
    // The server is a pure transport: replaying its journal offline
    // reconstructs the exact final state, byte for byte.
    let replayed = ref_serve::replay(market(), &report.journal).unwrap();
    assert_eq!(replayed.snapshot().encode(), report.snapshot);
}

#[test]
fn over_offered_load_is_rejected_not_collapsed() {
    // One-deep query/observe quotas with eight hammering clients: most
    // admissions race and lose, surfacing as `overloaded` + retry hint.
    let quotas = Quotas {
        control: 256,
        observe: 1,
        query: 1,
    };
    let config = ServeConfig::new(market())
        .with_epoch_interval(None)
        .with_quotas(quotas);
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    let mut setup = Client::connect(addr).unwrap();
    setup.join_external(1).unwrap();

    let completed = AtomicU64::new(0);
    let retried = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0u64..8 {
            let completed = &completed;
            let retried = &retried;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let query = Value::obj(vec![("op", Value::str("query"))]);
                let observe = Value::obj(vec![
                    ("op", Value::str("observe")),
                    ("agent", Value::from_u64(1)),
                    ("allocation", Value::num_array(&[1.0, 1.0])),
                    ("performance", Value::Num(1.0)),
                ]);
                for i in 0..150 {
                    let request = if (worker + i) % 2 == 0 {
                        &query
                    } else {
                        &observe
                    };
                    // Closed loop with polite retry: every request must
                    // eventually land; rejection is backpressure, not loss.
                    let (reply, retries) = client
                        .call_retrying(request, 10_000)
                        .unwrap_or_else(|e| panic!("request never landed: {e}"));
                    assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
                    completed.fetch_add(1, Ordering::Relaxed);
                    retried.fetch_add(retries, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(completed.load(Ordering::Relaxed), 8 * 150);
    let report = server.shutdown();
    assert_eq!(report.metrics.protocol_errors, 0);
    // The offered load exceeded the one-deep quotas: rejections must have
    // happened, and every one was retried to completion by the client.
    assert!(
        report.metrics.rejected_overload > 0,
        "over-offered load produced no rejections: {:?}",
        report.metrics
    );
    assert_eq!(
        report.metrics.rejected_overload,
        retried.load(Ordering::Relaxed)
    );
    // Memory stayed bounded: the queue never exceeded the quota budget.
    let budget = (quotas.control + quotas.observe + quotas.query) as u64;
    assert!(report.metrics.queue_depth_max <= budget);
    // And the journal still replays bit-identically after the storm.
    let replayed = ref_serve::replay(market(), &report.journal).unwrap();
    assert_eq!(replayed.snapshot().encode(), report.snapshot);
}

#[test]
fn connection_limit_bounces_deterministically() {
    let config = ServeConfig::new(market())
        .with_epoch_interval(None)
        .with_max_connections(1);
    let server = Server::start("127.0.0.1:0", config).unwrap();

    let mut first = Client::connect(server.addr()).unwrap();
    first.join_external(1).unwrap();

    // The second connection is over the limit: the acceptor sends one
    // `overloaded` line and hangs up.
    let mut second = Client::connect(server.addr()).unwrap();
    let reply = second.call_line(r#"{"op":"query"}"#).unwrap();
    assert_eq!(
        reply.get("error").and_then(Value::as_str),
        Some("overloaded")
    );
    assert!(reply.get("retry_after_ms").is_some());

    // The first connection is unaffected.
    first.query().unwrap();
    let report = server.shutdown();
    assert_eq!(report.metrics.rejected_overload, 1);
    assert_eq!(report.metrics.connections, 2);
}

#[test]
fn drain_completes_every_admitted_request() {
    // Admit a burst, then shut down from another connection: every
    // admitted request still gets a real reply, not a dropped socket.
    let config = ServeConfig::new(market()).with_epoch_interval(None);
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0u64..4)
            .map(|w| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.join_external(w + 1).unwrap();
                    let mut ok = 0u64;
                    let mut bounced = 0u64;
                    for _ in 0..200 {
                        match client.observe(w + 1, &[1.0, 1.0], 1.0) {
                            Ok(_) => ok += 1,
                            Err(ClientError::Server { code, .. }) if code == "shutting_down" => {
                                bounced += 1;
                                break;
                            }
                            Err(e) => panic!("unexpected failure: {e}"),
                        }
                    }
                    (ok, bounced)
                })
            })
            .collect();

        // Let the workers get going, then pull the plug over the wire.
        std::thread::sleep(Duration::from_millis(20));
        let mut admin = Client::connect(addr).unwrap();
        let reply = admin.shutdown().unwrap();
        assert!(reply
            .get("snapshot")
            .and_then(Value::as_str)
            .unwrap()
            .starts_with("refmarket-snapshot"));

        for worker in workers {
            let (ok, bounced) = worker.join().unwrap();
            // Every pre-drain request completed; at most one bounce each.
            assert!(ok > 0);
            assert!(bounced <= 1);
        }
    });

    let report = server.wait();
    assert_eq!(report.metrics.protocol_errors, 0);
    let replayed = ref_serve::replay(market(), &report.journal).unwrap();
    assert_eq!(replayed.snapshot().encode(), report.snapshot);
}
