//! The server is a pure transport: any accepted event sequence produces
//! exactly the allocations a direct offline `submit_all` would.
//!
//! Property-based: random op sequences are driven through a live TCP
//! server; the journal it kept is replayed two ways — through
//! [`ref_serve::replay`] (per-event `apply_now`) and through the engine's
//! own `submit_all` + pump-to-completion — and both must match the
//! server's final snapshot byte for byte.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use ref_core::resource::Capacity;
use ref_market::{MarketConfig, MarketEngine, MarketEvent};
use ref_serve::{wal, Client, ClientError, JournalLimit, ServeConfig, Server, WalConfig};

/// Self-cleaning unique temp directory (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ref-purity-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[derive(Debug, Clone)]
enum Op {
    JoinTruth { agent: u64, e0: f64 },
    JoinExternal { agent: u64 },
    Leave { agent: u64 },
    Demand { agent: u64, e0: Option<f64> },
    Observe { agent: u64, a0: f64, perf: f64 },
    Tick,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..8, 0u64..4, 0.1f64..0.9, 0.5f64..12.0, 0.1f64..5.0).prop_map(
        |(selector, agent, e0, a0, perf)| match selector {
            0 => Op::JoinTruth { agent, e0 },
            1 => Op::JoinExternal { agent },
            2 => Op::Leave { agent },
            3 => Op::Demand {
                agent,
                e0: Some(e0),
            },
            4 => Op::Demand { agent, e0: None },
            5 => Op::Observe { agent, a0, perf },
            // Weight ticks up so most sequences run a few epochs.
            _ => Op::Tick,
        },
    )
}

fn config() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).unwrap())
}

/// Issues one op; engine-level rejections (duplicate joins, unknown
/// agents) are expected and fine — they are journaled too.
fn issue(client: &mut Client, op: &Op) {
    let outcome = match op {
        Op::JoinTruth { agent, e0 } => client.join_truth(*agent, 1.0, &[*e0, 1.0 - *e0]),
        Op::JoinExternal { agent } => client.join_external(*agent),
        Op::Leave { agent } => client.leave(*agent),
        Op::Demand { agent, e0 } => {
            let truth = e0.map(|e0| (1.0, vec![e0, 1.0 - e0]));
            client.demand(*agent, truth.as_ref().map(|(s, e)| (*s, e.as_slice())))
        }
        Op::Observe { agent, a0, perf } => client.observe(*agent, &[*a0, 1.0], *perf),
        Op::Tick => client.tick(),
    };
    match outcome {
        Ok(_) => {}
        Err(ClientError::Server { ref code, .. }) if code == "market" => {}
        Err(e) => panic!("unexpected transport failure for {op:?}: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accepted_events_match_offline_submit_all(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let serve_config = ServeConfig::new(config())
            .with_epoch_interval(None)
            .with_journal_limit(JournalLimit(1 << 16));
        let server = Server::start("127.0.0.1:0", serve_config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for op in &ops {
            issue(&mut client, op);
        }
        let report = server.shutdown();
        prop_assert!(!report.journal_overflowed);
        prop_assert_eq!(report.metrics.protocol_errors, 0);

        // Replay path 1: per-event apply_now, as the live server did.
        let replayed = ref_serve::replay(config(), &report.journal).unwrap();
        prop_assert_eq!(replayed.snapshot().encode(), report.snapshot.clone());

        // Replay path 2: the batch API — submit_all, pump to completion
        // (a failed pump drops only the failing event; retry drains the
        // rest). The server must be indistinguishable from this.
        let mut offline = MarketEngine::new(config()).unwrap();
        offline.submit_all(report.journal.iter().cloned());
        while offline.pump().is_err() {}
        prop_assert_eq!(offline.snapshot().encode(), report.snapshot);
    }

    #[test]
    fn wal_enabled_server_stays_a_pure_transport(
        ops in proptest::collection::vec(op_strategy(), 1..32)
    ) {
        // Transport purity must hold with durability on: the WAL records
        // exactly the admitted events, in order, and a cold recovery
        // from disk lands on the same state as the live server.
        let dir = TempDir::new("wal");
        let serve_config = ServeConfig::new(config())
            .with_epoch_interval(None)
            .with_wal(WalConfig::new(dir.path()).with_checkpoint_every(7));
        let server = Server::start("127.0.0.1:0", serve_config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for op in &ops {
            issue(&mut client, op);
        }
        let report = server.shutdown();
        prop_assert_eq!(report.metrics.protocol_errors, 0);

        // The on-disk log IS the journal.
        let (first, events) = wal::read_events(dir.path()).unwrap();
        if first == 0 {
            prop_assert_eq!(&events, &report.journal);
        }
        // Cold recovery (checkpoint + tail) matches the live snapshot.
        let recovered = Server::recover(
            "127.0.0.1:0",
            ServeConfig::new(config())
                .with_epoch_interval(None)
                .with_wal(WalConfig::new(dir.path()).with_checkpoint_every(7)),
        )
        .unwrap();
        let mut client = Client::connect(recovered.addr()).unwrap();
        let recovered_snapshot = client.snapshot().unwrap();
        prop_assert_eq!(recovered_snapshot, report.snapshot);
        recovered.shutdown();
    }

    #[test]
    fn journal_round_trips_over_the_wire(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        let serve_config = ServeConfig::new(config()).with_epoch_interval(None);
        let server = Server::start("127.0.0.1:0", serve_config).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        for op in &ops {
            issue(&mut client, op);
        }
        // Fetch the journal over the wire and decode it client-side; it
        // must match the server's own journal event for event.
        let wire: Vec<MarketEvent> = client
            .journal()
            .unwrap()
            .iter()
            .map(|v| ref_serve::protocol::value_to_event(v).unwrap())
            .collect();
        let report = server.shutdown();
        prop_assert_eq!(wire, report.journal);
    }
}
