//! Torn-write recovery property: truncating the WAL at *any* byte
//! offset recovers exactly the state after the last complete record —
//! or after the newest checkpoint, whichever is further along — and the
//! recovered snapshot matches the pre-crash snapshot byte for byte.
//!
//! This is the crash model the durability contract promises: a crash
//! can tear at most the final record, and recovery never invents,
//! drops, or reorders an applied event.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use ref_core::resource::Capacity;
use ref_market::{MarketConfig, MarketEngine, MarketEvent, ObservationSource};
use ref_serve::wal::{self, Wal, WalConfig};
use ref_serve::FaultPlan;

/// Self-cleaning unique temp directory (no tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ref-walrec-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn event_strategy() -> impl Strategy<Value = MarketEvent> {
    (0u8..6, 0u64..4, 0.5f64..8.0, 0.1f64..4.0).prop_map(|(sel, agent, a0, perf)| match sel {
        0 => MarketEvent::AgentJoined {
            id: agent,
            source: ObservationSource::External,
        },
        1 => MarketEvent::AgentLeft { id: agent },
        2 => MarketEvent::ObservationReported {
            id: agent,
            allocation: vec![a0, 1.0],
            performance: perf,
        },
        // Weight ticks up so most histories run a few epochs.
        _ => MarketEvent::EpochTick,
    })
}

fn market() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_at_any_byte_recovers_the_last_complete_record(
        events in proptest::collection::vec(event_strategy(), 1..28),
        every in 0u64..6,
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = TempDir::new("tornprop");
        // Checkpoints are driven by hand below so the test controls the
        // cadence exactly; history is retained so a checkpoint never
        // prunes the byte offsets the truncation targets.
        let wal_config = WalConfig::new(dir.path())
            .with_checkpoint_every(0)
            .with_retain_history(true);

        // Golden path: apply each event offline, remembering the exact
        // snapshot after every prefix and the record boundary it ends at.
        let mut engine = MarketEngine::new(market()).unwrap();
        let mut snapshots = vec![engine.snapshot().encode()];
        let mut boundaries = vec![0u64];
        let mut latest_ckpt = 0u64;
        {
            let mut w = Wal::open(wal_config.clone(), FaultPlan::none()).unwrap().wal;
            for (i, e) in events.iter().enumerate() {
                prop_assert_eq!(w.append(e).unwrap(), i as u64);
                let _ = engine.apply_now(e.clone());
                snapshots.push(engine.snapshot().encode());
                let path = wal::last_segment_path(dir.path()).unwrap().unwrap();
                boundaries.push(fs::metadata(&path).unwrap().len());
                if every > 0 && (i as u64 + 1).is_multiple_of(every) {
                    w.checkpoint(&snapshots[i + 1]).unwrap();
                    latest_ckpt = i as u64 + 1;
                }
            }
        }

        // Crash: truncate the (single) segment at an arbitrary byte.
        let path = wal::last_segment_path(dir.path()).unwrap().unwrap();
        let total = fs::metadata(&path).unwrap().len();
        let cut = (total as f64 * cut_fraction) as u64;
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // k = records that survive the cut intact; the checkpoint wins
        // when it is ahead of the surviving log.
        let k = boundaries.iter().filter(|&&b| b <= cut).count() as u64 - 1;
        let expected_seq = latest_ckpt.max(k);

        let rec = Wal::open(wal_config, FaultPlan::none()).unwrap();
        prop_assert_eq!(rec.wal.next_seq(), expected_seq);
        let mut recovered = match &rec.checkpoint {
            Some((_, snapshot)) => MarketEngine::restore(snapshot).unwrap(),
            None => MarketEngine::new(market()).unwrap(),
        };
        for e in &rec.tail {
            let _ = recovered.apply_now(e.clone());
        }
        prop_assert_eq!(
            recovered.snapshot().encode(),
            snapshots[expected_seq as usize].clone(),
            "recovered state must match the pre-crash snapshot at seq {}",
            expected_seq
        );
    }
}
