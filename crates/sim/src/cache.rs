//! Set-associative caches with LRU replacement.
//!
//! The timing model uses one [`SetAssociativeCache`] per level. Way
//! partitioning of the shared L2 (the enforcement mechanism the REF paper
//! assumes for cache capacity) is expressed by giving each agent a private
//! cache over a subset of the ways — see [`partition_ways`] — which is
//! exactly equivalent for multiprogrammed workloads with disjoint address
//! spaces.

use crate::config::CacheConfig;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessResult {
    /// The block was present.
    Hit,
    /// The block was absent and has been filled (LRU victim evicted).
    Miss,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses.saturating_sub(self.hits)
    }

    /// Counter difference `self - earlier`, for measuring an interval after
    /// a warmup snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counters than `self`.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        assert!(
            self.accesses >= earlier.accesses && self.hits >= earlier.hits,
            "snapshot is not earlier than self"
        );
        CacheStats {
            accesses: self.accesses - earlier.accesses,
            hits: self.hits - earlier.hits,
        }
    }

    /// Hit rate in `[0, 1]`; `0.0` when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Outcome of a read/write access, including any write-back the fill
/// displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResponse {
    /// Hit or miss.
    pub result: AccessResult,
    /// Base address of an evicted dirty block that must be written back,
    /// if the fill displaced one.
    pub writeback: Option<u64>,
}

/// A set-associative cache with true-LRU replacement and per-line dirty
/// bits (write-back policy).
///
/// # Examples
///
/// ```
/// use ref_sim::cache::{AccessResult, SetAssociativeCache};
///
/// let mut c = SetAssociativeCache::new(2, 2, 64);
/// assert_eq!(c.access(0), AccessResult::Miss);
/// assert_eq!(c.access(0), AccessResult::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    sets: usize,
    ways: usize,
    block_bytes: u64,
    /// `log2(block_bytes)`: block index by shift instead of division.
    block_shift: u32,
    /// `log2(sets)` when the set count is a power of two, letting the
    /// set/tag split run as mask/shift index arithmetic on the hot path;
    /// `None` falls back to division for odd geometries.
    set_shift: Option<u32>,
    /// `sets * ways` tag slots; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// Last-touch stamps for LRU, parallel to `tags`.
    stamps: Vec<u64>,
    /// Dirty bits, parallel to `tags`.
    dirty: Vec<bool>,
    clock: u64,
    stats: CacheStats,
}

/// Sentinel for an empty way; real tags are always smaller because they are
/// address bits shifted right.
const INVALID_TAG: u64 = u64::MAX;

impl SetAssociativeCache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `block_bytes` is not a power of
    /// two.
    pub fn new(sets: usize, ways: usize, block_bytes: u64) -> SetAssociativeCache {
        assert!(sets > 0 && ways > 0, "cache must have sets and ways");
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two, got {block_bytes}"
        );
        SetAssociativeCache {
            sets,
            ways,
            block_bytes,
            block_shift: block_bytes.trailing_zeros(),
            set_shift: sets.is_power_of_two().then(|| sets.trailing_zeros()),
            tags: vec![INVALID_TAG; sets * ways],
            stamps: vec![0; sets * ways],
            dirty: vec![false; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Splits an address into `(set index, tag)` with shift/mask
    /// arithmetic when the geometry allows it.
    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.block_shift;
        match self.set_shift {
            Some(shift) => ((block & (self.sets as u64 - 1)) as usize, block >> shift),
            None => (
                (block % self.sets as u64) as usize,
                block / self.sets as u64,
            ),
        }
    }

    /// Creates a cache from a [`CacheConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configured geometry is degenerate (see
    /// [`CacheConfig::sets`]).
    pub fn from_config(cfg: &CacheConfig) -> SetAssociativeCache {
        SetAssociativeCache::new(cfg.sets(), cfg.ways, cfg.block_bytes)
    }

    /// Reads the block containing `addr`, filling on a miss (any displaced
    /// dirty block's write-back is dropped; use
    /// [`access_rw`](SetAssociativeCache::access_rw) to observe it).
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.access_rw(addr, false).result
    }

    /// Accesses the block containing `addr`, marking it dirty on a write,
    /// and reports any dirty block the fill displaced.
    pub fn access_rw(&mut self, addr: u64, write: bool) -> AccessResponse {
        self.clock += 1;
        self.stats.accesses = self.stats.accesses.saturating_add(1);
        let (set, tag) = self.locate(addr);
        let base = set * self.ways;
        // Single pass over the set: find the matching way and, for the
        // miss path, the first invalid way and the LRU way in the same
        // sweep (the previous code re-scanned the set up to three times).
        let mut invalid = usize::MAX;
        let mut lru = 0;
        let mut lru_stamp = u64::MAX;
        for w in 0..self.ways {
            let slot = base + w;
            let t = self.tags[slot];
            if t == tag {
                self.stamps[slot] = self.clock;
                self.dirty[slot] |= write;
                self.stats.hits = self.stats.hits.saturating_add(1);
                return AccessResponse {
                    result: AccessResult::Hit,
                    writeback: None,
                };
            }
            if t == INVALID_TAG {
                if invalid == usize::MAX {
                    invalid = w;
                }
            } else if self.stamps[slot] < lru_stamp {
                lru_stamp = self.stamps[slot];
                lru = w;
            }
        }
        // Fill: pick an invalid way, else the LRU way.
        let victim = if invalid != usize::MAX { invalid } else { lru };
        let writeback = if self.tags[base + victim] != INVALID_TAG && self.dirty[base + victim] {
            let victim_block = self.tags[base + victim] * self.sets as u64 + set as u64;
            Some(victim_block * self.block_bytes)
        } else {
            None
        };
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        self.dirty[base + victim] = write;
        AccessResponse {
            result: AccessResult::Miss,
            writeback,
        }
    }

    /// Whether the block containing `addr` is currently resident (no side
    /// effects, no stat updates).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&tag)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents (for warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.block_bytes
    }
}

/// Splits `total_ways` among agents in proportion to `shares` using
/// largest-remainder rounding, guaranteeing every agent at least one way.
///
/// # Panics
///
/// Panics if `shares` is empty, any share is negative or non-finite, the
/// shares sum to zero, or there are fewer ways than agents.
///
/// # Examples
///
/// ```
/// use ref_sim::cache::partition_ways;
///
/// assert_eq!(partition_ways(8, &[0.75, 0.25]), vec![6, 2]);
/// assert_eq!(partition_ways(8, &[1.0, 0.0]), vec![7, 1]);
/// ```
pub fn partition_ways(total_ways: usize, shares: &[f64]) -> Vec<usize> {
    assert!(!shares.is_empty(), "need at least one agent");
    assert!(
        shares.iter().all(|s| s.is_finite() && *s >= 0.0),
        "shares must be finite and non-negative"
    );
    let total: f64 = shares.iter().sum();
    assert!(total > 0.0, "shares must not all be zero");
    assert!(
        total_ways >= shares.len(),
        "need at least one way per agent ({} ways, {} agents)",
        total_ways,
        shares.len()
    );
    let n = shares.len();
    // Reserve one way per agent, distribute the rest by largest remainder.
    let spare = total_ways - n;
    let quotas: Vec<f64> = shares.iter().map(|s| s / total * spare as f64).collect();
    let mut ways: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = ways.iter().sum();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - ways[a] as f64;
        let rb = quotas[b] - ways[b] as f64;
        rb.partial_cmp(&ra).expect("remainders are finite")
    });
    for &i in order.iter().take(spare - assigned) {
        ways[i] += 1;
    }
    for w in &mut ways {
        *w += 1;
    }
    ways
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheSize, PlatformConfig};

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssociativeCache::new(4, 2, 64);
        assert_eq!(c.access(100), AccessResult::Miss);
        assert_eq!(c.access(100), AccessResult::Hit);
        // Same block, different byte.
        assert_eq!(c.access(127), AccessResult::Hit);
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // One set, two ways: blocks map to set 0 when block % 1 == 0.
        let mut c = SetAssociativeCache::new(1, 2, 64);
        c.access(0); // block 0
        c.access(64); // block 1
        c.access(0); // touch block 0 -> block 1 is LRU
        c.access(128); // block 2 evicts block 1
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = SetAssociativeCache::new(2, 1, 64);
        // Blocks 0 and 2 both map to set 0 in a 2-set cache.
        assert_eq!(c.access(0), AccessResult::Miss);
        assert_eq!(c.access(2 * 64), AccessResult::Miss);
        assert_eq!(c.access(0), AccessResult::Miss); // conflict, evicted
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        // A cyclic working set larger than the small cache but inside the
        // big one: classic LRU pathology for the small cache.
        let run = |sets: usize| {
            let mut c = SetAssociativeCache::new(sets, 4, 64);
            let blocks = 64_u64;
            for rep in 0..20 {
                for b in 0..blocks {
                    let _ = c.access(b * 64);
                }
                let _ = rep;
            }
            c.stats().hit_rate()
        };
        let small = run(4); // 16 blocks capacity
        let large = run(32); // 128 blocks capacity
        assert!(large > small, "large {large} <= small {small}");
        assert!(large > 0.9);
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = SetAssociativeCache::new(2, 2, 64);
        c.access(0);
        let stats_before = c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(1024));
        assert_eq!(c.stats(), stats_before);
    }

    #[test]
    fn from_config_matches_geometry() {
        let p = PlatformConfig::asplos14();
        let c = SetAssociativeCache::from_config(&p.l1);
        assert_eq!(c.capacity_bytes(), CacheSize::from_kib(32).bytes());
        assert_eq!(c.ways(), 4);
        assert_eq!(c.block_bytes(), 64);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = SetAssociativeCache::new(2, 2, 64);
        c.access(0);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.access(0), AccessResult::Hit);
    }

    #[test]
    fn stats_hit_rate_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn writeback_emitted_only_for_dirty_victims() {
        // One set, one way: every new block evicts the previous one.
        let mut c = SetAssociativeCache::new(1, 1, 64);
        // Clean fill, clean eviction.
        assert_eq!(c.access_rw(0, false).writeback, None);
        assert_eq!(c.access_rw(64, false).writeback, None);
        // Dirty fill: the next eviction must write block 1 back.
        let r = c.access_rw(64, true);
        assert_eq!(r.result, AccessResult::Hit);
        let r = c.access_rw(128, false);
        assert_eq!(r.result, AccessResult::Miss);
        assert_eq!(r.writeback, Some(64));
        // The dirty bit moved on: evicting the clean block 2 is silent.
        assert_eq!(c.access_rw(192, false).writeback, None);
    }

    #[test]
    fn writeback_address_reconstruction_multi_set() {
        let mut c = SetAssociativeCache::new(4, 1, 64);
        // Block 5 -> set 1, tag 1. Write it, then evict with block 13
        // (set 1, tag 3).
        let _ = c.access_rw(5 * 64, true);
        let r = c.access_rw(13 * 64, false);
        assert_eq!(r.writeback, Some(5 * 64));
    }

    #[test]
    fn read_hit_preserves_dirty_bit() {
        let mut c = SetAssociativeCache::new(1, 1, 64);
        let _ = c.access_rw(0, true);
        let _ = c.access_rw(0, false); // read hit must not clean the line
        let r = c.access_rw(64, false);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn partition_ways_proportional() {
        assert_eq!(partition_ways(8, &[0.5, 0.5]), vec![4, 4]);
        assert_eq!(partition_ways(8, &[0.75, 0.25]), vec![6, 2]);
        let w = partition_ways(8, &[0.6, 0.2, 0.2]);
        assert_eq!(w.iter().sum::<usize>(), 8);
        assert!(w.iter().all(|&x| x >= 1));
    }

    #[test]
    fn partition_ways_guarantees_minimum() {
        let w = partition_ways(8, &[0.99, 0.005, 0.005]);
        assert!(w.iter().all(|&x| x >= 1));
        assert_eq!(w.iter().sum::<usize>(), 8);
        assert!(w[0] >= 6);
    }

    #[test]
    #[should_panic(expected = "at least one way per agent")]
    fn partition_ways_needs_enough_ways() {
        let _ = partition_ways(2, &[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_block() {
        let _ = SetAssociativeCache::new(2, 2, 48);
    }

    #[test]
    fn non_power_of_two_sets_fall_back_to_division() {
        // 3 sets exercises the division path of `locate`; behaviour must
        // match the modular mapping exactly.
        let mut c = SetAssociativeCache::new(3, 1, 64);
        assert_eq!(c.access(0), AccessResult::Miss); // block 0 -> set 0
        assert_eq!(c.access(3 * 64), AccessResult::Miss); // block 3 -> set 0, evicts
        assert!(!c.probe(0));
        assert!(c.probe(3 * 64));
        assert_eq!(c.access(4 * 64), AccessResult::Miss); // block 4 -> set 1
        assert_eq!(c.access(4 * 64), AccessResult::Hit);
    }
}
