//! Platform configuration mirroring Table 1 of the REF paper.
//!
//! The paper simulates 3 GHz out-of-order cores with a two-level cache
//! hierarchy and a single-channel DRAM system, sweeping five L2 capacities
//! and five memory bandwidths (25 architectures). [`PlatformConfig::asplos14`]
//! reproduces those parameters; the sweep grids are exposed as
//! [`PlatformConfig::l2_sweep`] and [`PlatformConfig::bandwidth_sweep`].

use std::fmt;

/// A cache capacity in bytes.
///
/// # Examples
///
/// ```
/// use ref_sim::config::CacheSize;
///
/// let c = CacheSize::from_kib(512);
/// assert_eq!(c.bytes(), 512 * 1024);
/// assert_eq!(c.to_string(), "512 KiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheSize(u64);

impl CacheSize {
    /// Creates a capacity from raw bytes.
    pub fn from_bytes(bytes: u64) -> CacheSize {
        CacheSize(bytes)
    }

    /// Creates a capacity from KiB.
    pub fn from_kib(kib: u64) -> CacheSize {
        CacheSize(kib * 1024)
    }

    /// Creates a capacity from MiB.
    pub fn from_mib(mib: u64) -> CacheSize {
        CacheSize(mib * 1024 * 1024)
    }

    /// The capacity in bytes.
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// The capacity in KiB (floor).
    pub fn kib(self) -> u64 {
        self.0 / 1024
    }

    /// The capacity in MiB as a float (used when fitting utilities).
    pub fn mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for CacheSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 && self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{} MiB", self.0 / (1024 * 1024))
        } else if self.0 >= 1024 && self.0.is_multiple_of(1024) {
            write!(f, "{} KiB", self.0 / 1024)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// An off-chip memory bandwidth in bytes per second.
///
/// # Examples
///
/// ```
/// use ref_sim::config::Bandwidth;
///
/// let b = Bandwidth::from_gb_per_sec(3.2);
/// assert!((b.gb_per_sec() - 3.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth from GB/s (decimal gigabytes).
    ///
    /// # Panics
    ///
    /// Panics if `gb` is not strictly positive and finite.
    pub fn from_gb_per_sec(gb: f64) -> Bandwidth {
        assert!(
            gb > 0.0 && gb.is_finite(),
            "bandwidth must be positive and finite, got {gb}"
        );
        Bandwidth(gb * 1e9)
    }

    /// Creates a bandwidth from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not strictly positive and finite.
    pub fn from_bytes_per_sec(bytes: f64) -> Bandwidth {
        assert!(
            bytes > 0.0 && bytes.is_finite(),
            "bandwidth must be positive and finite, got {bytes}"
        );
        Bandwidth(bytes)
    }

    /// Bandwidth in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Bandwidth in GB/s.
    pub fn gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// Bytes transferred per core cycle at the given clock.
    pub fn bytes_per_cycle(self, clock_hz: f64) -> f64 {
        self.0 / clock_hz
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} GB/s", self.gb_per_sec())
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity.
    pub size: CacheSize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Access latency in core cycles.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/block, or capacity
    /// smaller than one way of blocks).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.block_bytes > 0, "degenerate geometry");
        let sets = self.size.bytes() / (self.ways as u64 * self.block_bytes);
        assert!(
            sets > 0,
            "capacity {} too small for {} ways of {}-byte blocks",
            self.size,
            self.ways,
            self.block_bytes
        );
        sets as usize
    }
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePolicy {
    /// Precharge after every access (the paper's Table-1 controller).
    /// Every access pays the full activate + CAS + precharge latency.
    ClosedPage,
    /// Leave the row open; accesses hitting the open row pay only the CAS
    /// latency. Used by the `ablation_page_policy` study.
    OpenPage,
}

/// DRAM timing and organization (single channel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Peak channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Number of ranks on the channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Full access latency (activate + CAS + precharge) in core cycles.
    pub access_latency_cycles: u64,
    /// Cycles a bank stays busy per access (row cycle time).
    pub bank_occupancy_cycles: u64,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// CAS-only latency for open-page row hits, in core cycles.
    pub row_hit_latency_cycles: u64,
    /// Row size in bytes (for open-page row-hit detection).
    pub row_bytes: u64,
}

/// Core pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Issue/commit width in instructions per cycle.
    pub issue_width: u32,
    /// Miss-status-holding registers: maximum overlapping DRAM misses.
    pub mshr_entries: usize,
    /// Fraction of loads whose consumers stall the pipeline until data
    /// returns (models dependence chains; the remainder overlap fully).
    pub dependent_load_fraction: f64,
    /// Whether the L2 prefetches the next sequential block on every miss.
    /// Off in the Table-1 reproduction configuration; used by the
    /// `ablation_prefetcher` study.
    pub next_line_prefetch: bool,
}

/// Full single-channel platform: core, L1, L2, DRAM.
///
/// # Examples
///
/// ```
/// use ref_sim::config::PlatformConfig;
///
/// let p = PlatformConfig::asplos14();
/// assert_eq!(p.l1.ways, 4);
/// assert_eq!(PlatformConfig::l2_sweep().len(), 5);
/// assert_eq!(PlatformConfig::bandwidth_sweep().len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 (last-level) cache.
    pub l2: CacheConfig,
    /// DRAM channel.
    pub dram: DramConfig,
}

impl PlatformConfig {
    /// The Table-1 platform: 3 GHz 4-wide OOO core, 32 KB 4-way L1 (2-cycle),
    /// 8-way 64-byte-block L2 (20-cycle) and a single-channel closed-page
    /// DRAM system. The L2 size defaults to 1 MiB and bandwidth to 6.4 GB/s
    /// (middle of the sweep); override with [`with_l2_size`] and
    /// [`with_bandwidth`].
    ///
    /// [`with_l2_size`]: PlatformConfig::with_l2_size
    /// [`with_bandwidth`]: PlatformConfig::with_bandwidth
    pub fn asplos14() -> PlatformConfig {
        PlatformConfig {
            core: CoreConfig {
                clock_hz: 3.0e9,
                issue_width: 4,
                mshr_entries: 8,
                dependent_load_fraction: 0.35,
                next_line_prefetch: false,
            },
            l1: CacheConfig {
                size: CacheSize::from_kib(32),
                ways: 4,
                block_bytes: 64,
                latency_cycles: 2,
            },
            l2: CacheConfig {
                size: CacheSize::from_mib(1),
                ways: 8,
                block_bytes: 64,
                latency_cycles: 20,
            },
            dram: DramConfig {
                bandwidth: Bandwidth::from_gb_per_sec(6.4),
                ranks: 2,
                banks_per_rank: 8,
                // ~42 ns activate+CAS+precharge at 3 GHz.
                access_latency_cycles: 126,
                // ~15 ns row cycle residue per bank.
                bank_occupancy_cycles: 45,
                page_policy: PagePolicy::ClosedPage,
                // ~14 ns CAS at 3 GHz.
                row_hit_latency_cycles: 42,
                row_bytes: 2048,
            },
        }
    }

    /// Returns a copy with the L2 capacity replaced.
    pub fn with_l2_size(mut self, size: CacheSize) -> PlatformConfig {
        self.l2.size = size;
        self
    }

    /// Returns a copy with the DRAM bandwidth replaced.
    pub fn with_bandwidth(mut self, bandwidth: Bandwidth) -> PlatformConfig {
        self.dram.bandwidth = bandwidth;
        self
    }

    /// Returns a copy with the DRAM page policy replaced.
    pub fn with_page_policy(mut self, policy: PagePolicy) -> PlatformConfig {
        self.dram.page_policy = policy;
        self
    }

    /// Returns a copy with the next-line prefetcher toggled.
    pub fn with_next_line_prefetch(mut self, enabled: bool) -> PlatformConfig {
        self.core.next_line_prefetch = enabled;
        self
    }

    /// The five L2 capacities of Table 1: 128 KB to 2 MB.
    pub fn l2_sweep() -> [CacheSize; 5] {
        [
            CacheSize::from_kib(128),
            CacheSize::from_kib(256),
            CacheSize::from_kib(512),
            CacheSize::from_mib(1),
            CacheSize::from_mib(2),
        ]
    }

    /// The five DRAM bandwidths of Table 1: 0.8 to 12.8 GB/s.
    pub fn bandwidth_sweep() -> [Bandwidth; 5] {
        [
            Bandwidth::from_gb_per_sec(0.8),
            Bandwidth::from_gb_per_sec(1.6),
            Bandwidth::from_gb_per_sec(3.2),
            Bandwidth::from_gb_per_sec(6.4),
            Bandwidth::from_gb_per_sec(12.8),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size_conversions() {
        assert_eq!(CacheSize::from_kib(128).bytes(), 131072);
        assert_eq!(CacheSize::from_mib(2).kib(), 2048);
        assert!((CacheSize::from_kib(512).mib_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_size_display() {
        assert_eq!(CacheSize::from_mib(2).to_string(), "2 MiB");
        assert_eq!(CacheSize::from_kib(128).to_string(), "128 KiB");
        assert_eq!(CacheSize::from_bytes(100).to_string(), "100 B");
    }

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::from_gb_per_sec(12.8);
        assert!((b.bytes_per_sec() - 12.8e9).abs() < 1.0);
        // At 3 GHz, 12.8 GB/s moves 4.266 bytes per cycle.
        assert!((b.bytes_per_cycle(3.0e9) - 4.2667).abs() < 1e-3);
        assert_eq!(b.to_string(), "12.8 GB/s");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::from_gb_per_sec(0.0);
    }

    #[test]
    fn cache_geometry_sets() {
        let c = CacheConfig {
            size: CacheSize::from_kib(32),
            ways: 4,
            block_bytes: 64,
            latency_cycles: 2,
        };
        // 32 KiB / (4 ways * 64 B) = 128 sets.
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn table1_sweeps_match_paper() {
        let l2: Vec<u64> = PlatformConfig::l2_sweep().iter().map(|c| c.kib()).collect();
        assert_eq!(l2, vec![128, 256, 512, 1024, 2048]);
        let bw: Vec<f64> = PlatformConfig::bandwidth_sweep()
            .iter()
            .map(|b| b.gb_per_sec())
            .collect();
        assert_eq!(bw, vec![0.8, 1.6, 3.2, 6.4, 12.8]);
    }

    #[test]
    fn page_policy_builder() {
        let p = PlatformConfig::asplos14();
        assert_eq!(p.dram.page_policy, PagePolicy::ClosedPage);
        let open = p.with_page_policy(PagePolicy::OpenPage);
        assert_eq!(open.dram.page_policy, PagePolicy::OpenPage);
        assert!(open.dram.row_hit_latency_cycles < open.dram.access_latency_cycles);
    }

    #[test]
    fn builders_override_fields() {
        let p = PlatformConfig::asplos14()
            .with_l2_size(CacheSize::from_kib(256))
            .with_bandwidth(Bandwidth::from_gb_per_sec(0.8));
        assert_eq!(p.l2.size.kib(), 256);
        assert!((p.dram.bandwidth.gb_per_sec() - 0.8).abs() < 1e-12);
        // Other fields untouched.
        assert_eq!(p.core.issue_width, 4);
    }
}
