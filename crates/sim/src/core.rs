//! Out-of-order core timing model.
//!
//! A deliberately compact stand-in for a cycle-accurate OOO pipeline that
//! preserves the effects the REF fitting pipeline measures:
//!
//! - base throughput limited by issue width;
//! - L2 hits stalling only dependent consumers (independent loads are hidden
//!   by the out-of-order window);
//! - DRAM misses overlapping up to the MSHR count (memory-level
//!   parallelism), with dependent loads serializing on completion;
//! - DRAM completion times shaped by the bank structure and the agent's
//!   bandwidth share ([`crate::dram`]).
//!
//! Instructions per cycle (IPC) therefore rises with cache capacity (fewer
//! DRAM trips) and with bandwidth (earlier completions), with diminishing
//! returns in both — the Cobb-Douglas shape the paper fits.

use crate::cache::{AccessResult, CacheStats, SetAssociativeCache};
use crate::config::{CoreConfig, PlatformConfig};
use crate::dram::Dram;
use crate::trace::Op;

/// Timing and hit-rate outcome of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: f64,
    /// L1 data cache counters.
    pub l1: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
    /// DRAM requests issued by this core.
    pub dram_requests: u64,
    /// Prefetches issued (zero unless the next-line prefetcher is on).
    pub prefetches: u64,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions as f64 / self.cycles
        } else {
            0.0
        }
    }

    /// The interval report `self - earlier`, used to discard a warmup phase
    /// from the measurement.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually an earlier snapshot of the same
    /// run.
    pub fn since(&self, earlier: &SimReport) -> SimReport {
        assert!(
            self.instructions >= earlier.instructions && self.cycles >= earlier.cycles,
            "snapshot is not earlier than self"
        );
        SimReport {
            instructions: self.instructions - earlier.instructions,
            cycles: self.cycles - earlier.cycles,
            l1: self.l1.since(&earlier.l1),
            l2: self.l2.since(&earlier.l2),
            dram_requests: self.dram_requests - earlier.dram_requests,
            prefetches: self.prefetches - earlier.prefetches,
        }
    }
}

/// Outstanding-miss completion times, bounded by the MSHR count.
///
/// Replaces the previous `BinaryHeap<Reverse<u64>>`: the entry count is
/// tiny (Table 1 uses 8 MSHRs), so linear scans beat heap maintenance,
/// and the backing storage is allocated once per core — the per-access
/// path never touches the heap allocator.
#[derive(Debug, Clone)]
struct MissQueue {
    completions: Vec<u64>,
}

impl MissQueue {
    fn with_capacity(entries: usize) -> MissQueue {
        MissQueue {
            completions: Vec::with_capacity(entries),
        }
    }

    fn len(&self) -> usize {
        self.completions.len()
    }

    fn push(&mut self, completion: u64) {
        self.completions.push(completion);
    }

    /// Removes and returns the earliest completion.
    fn pop_earliest(&mut self) -> Option<u64> {
        let at = self
            .completions
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)?;
        Some(self.completions.swap_remove(at))
    }

    /// Drops every entry that completed at or before `now`.
    fn drain_completed(&mut self, now: u64) {
        self.completions.retain(|&t| t > now);
    }

    /// Empties the queue, returning the earliest completion: retirement
    /// resumes once the oldest MSHR frees, so `finish` waits only for
    /// that entry (the historical drain semantics; changing it would
    /// shift every calibrated IPC in EXPERIMENTS.md).
    fn drain_earliest(&mut self) -> Option<u64> {
        let earliest = self.completions.iter().copied().min();
        self.completions.clear();
        earliest
    }
}

/// One core with private L1 and (a partition of) L2, issuing to a shared
/// DRAM channel.
#[derive(Debug, Clone)]
pub struct Core {
    cfg: CoreConfig,
    l1: SetAssociativeCache,
    l2: SetAssociativeCache,
    l2_latency_cycles: u64,
    now: f64,
    instructions: u64,
    dram_requests: u64,
    prefetches: u64,
    outstanding: MissQueue,
    rng: u64,
}

impl Core {
    /// Creates a core from the platform parameters with a private L1 and
    /// the supplied L2.
    ///
    /// The L2 passed here is this core's own partition when the physical L2
    /// is shared (way partitioning gives each agent a private slice; see
    /// [`crate::cache::partition_ways`]).
    pub fn new(platform: &PlatformConfig, l2: SetAssociativeCache) -> Core {
        Core {
            cfg: platform.core,
            l1: SetAssociativeCache::from_config(&platform.l1),
            l2,
            l2_latency_cycles: platform.l2.latency_cycles,
            now: 0.0,
            instructions: 0,
            dram_requests: 0,
            prefetches: 0,
            outstanding: MissQueue::with_capacity(platform.core.mshr_entries),
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Retires one instruction, advancing the core clock.
    ///
    /// `agent` is this core's index on the shared DRAM channel.
    pub fn step(&mut self, op: Op, dram: &mut Dram, agent: usize) {
        self.instructions = self.instructions.saturating_add(1);
        self.now += 1.0 / f64::from(self.cfg.issue_width);
        let addr = match op.address() {
            Some(a) => a,
            None => return,
        };
        let is_write = matches!(op, Op::Store(_));
        if self.l1.access_rw(addr, is_write).result == AccessResult::Hit {
            // L1 hits are fully pipelined (L1 write-backs into the L2 are
            // below this model's resolution).
            return;
        }
        // Stores never stall the pipeline (the store buffer hides them);
        // loads stall when a dependent consumer follows.
        let dependent = !is_write && self.next_dependent();
        let l2 = self.l2.access_rw(addr, is_write);
        if l2.result == AccessResult::Hit {
            if dependent {
                self.now += self.l2_latency_cycles as f64;
            }
            return;
        }
        // L2 miss: issue to DRAM, bounded by MSHR occupancy.
        if self.outstanding.len() >= self.cfg.mshr_entries {
            if let Some(earliest) = self.outstanding.pop_earliest() {
                self.now = self.now.max(earliest as f64);
            }
        }
        let completion = dram.access(agent, addr, self.now.ceil() as u64);
        self.dram_requests = self.dram_requests.saturating_add(1);
        // A displaced dirty line consumes write bandwidth; the core never
        // waits on it.
        if let Some(wb_addr) = l2.writeback {
            let _ = dram.access(agent, wb_addr, self.now.ceil() as u64);
            self.dram_requests = self.dram_requests.saturating_add(1);
        }
        // Next-line prefetch: on a demand miss, pull the sequential
        // neighbor into the L2 if absent. The fetch consumes bandwidth but
        // never stalls the core.
        if self.cfg.next_line_prefetch {
            let next = addr + self.l2.block_bytes();
            let pf = self.l2.access_rw(next, false);
            if pf.result == AccessResult::Miss {
                let _ = dram.access(agent, next, self.now.ceil() as u64);
                self.dram_requests = self.dram_requests.saturating_add(1);
                self.prefetches = self.prefetches.saturating_add(1);
                if let Some(wb_addr) = pf.writeback {
                    let _ = dram.access(agent, wb_addr, self.now.ceil() as u64);
                    self.dram_requests = self.dram_requests.saturating_add(1);
                }
            }
        }
        if dependent {
            self.now = self.now.max(completion as f64);
            // A dependent miss drains naturally; drop completed entries.
            self.outstanding.drain_completed(self.now as u64);
        } else {
            self.outstanding.push(completion);
        }
    }

    /// Drains outstanding misses and returns the final report.
    pub fn finish(&mut self) -> SimReport {
        if let Some(earliest) = self.outstanding.drain_earliest() {
            self.now = self.now.max(earliest as f64);
        }
        self.report()
    }

    /// The report so far, without draining outstanding misses.
    pub fn report(&self) -> SimReport {
        SimReport {
            instructions: self.instructions,
            cycles: self.now,
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            dram_requests: self.dram_requests,
            prefetches: self.prefetches,
        }
    }

    /// Current core clock in cycles.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Deterministic pseudo-random dependence draw (xorshift64*).
    fn next_dependent(&mut self) -> bool {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let u = (self.rng >> 11) as f64 / (1_u64 << 53) as f64;
        u < self.cfg.dependent_load_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bandwidth, PlatformConfig};

    fn fixture(gb: f64, l2_kib: u64) -> (Core, Dram) {
        let p = PlatformConfig::asplos14()
            .with_bandwidth(Bandwidth::from_gb_per_sec(gb))
            .with_l2_size(crate::config::CacheSize::from_kib(l2_kib));
        let core = Core::new(&p, SetAssociativeCache::from_config(&p.l2));
        let dram = Dram::single_agent(&p.dram, p.core.clock_hz);
        (core, dram)
    }

    #[test]
    fn compute_only_reaches_issue_width() {
        let (mut core, mut dram) = fixture(6.4, 1024);
        for _ in 0..10_000 {
            core.step(Op::Compute, &mut dram, 0);
        }
        let r = core.finish();
        assert!((r.ipc() - 4.0).abs() < 1e-9, "ipc {}", r.ipc());
        assert_eq!(r.dram_requests, 0);
    }

    #[test]
    fn l1_hits_are_free() {
        let (mut core, mut dram) = fixture(6.4, 1024);
        // Two hot blocks: after cold misses everything hits in L1.
        for i in 0..10_000_u64 {
            core.step(Op::Load((i % 2) * 64), &mut dram, 0);
        }
        let r = core.finish();
        assert!(r.ipc() > 3.5, "ipc {}", r.ipc());
        assert!(r.l1.hit_rate() > 0.999);
    }

    #[test]
    fn dram_bound_stream_is_slow() {
        let (mut core, mut dram) = fixture(0.8, 128);
        // Strided stream touching a new block every access: misses
        // everywhere.
        for i in 0..20_000_u64 {
            core.step(Op::Load(i * 64), &mut dram, 0);
        }
        let r = core.finish();
        assert!(r.ipc() < 0.5, "ipc {}", r.ipc());
        assert!(r.dram_requests > 19_000);
    }

    #[test]
    fn more_bandwidth_helps_streaming() {
        let ipc_at = |gb: f64| {
            let (mut core, mut dram) = fixture(gb, 128);
            for i in 0..20_000_u64 {
                core.step(Op::Load(i * 64), &mut dram, 0);
            }
            core.finish().ipc()
        };
        let slow = ipc_at(0.8);
        let fast = ipc_at(12.8);
        assert!(fast > 2.0 * slow, "fast {fast} slow {slow}");
    }

    #[test]
    fn more_cache_helps_reuse() {
        // Working set of 512 KiB, re-walked repeatedly: fits in 1 MiB L2
        // but thrashes a 128 KiB L2.
        let ipc_at = |l2_kib: u64| {
            let (mut core, mut dram) = fixture(1.6, l2_kib);
            let blocks = 512 * 1024 / 64;
            for rep in 0..6_u64 {
                for b in 0..blocks {
                    core.step(Op::Load(b * 64), &mut dram, 0);
                }
                let _ = rep;
            }
            core.finish().ipc()
        };
        let small = ipc_at(128);
        let large = ipc_at(1024);
        assert!(large > 1.5 * small, "large {large} small {small}");
    }

    #[test]
    fn prefetcher_turns_streaming_misses_into_hits() {
        let prefetch_ipc = |enabled: bool| {
            let p = PlatformConfig::asplos14()
                .with_bandwidth(crate::config::Bandwidth::from_gb_per_sec(12.8))
                .with_next_line_prefetch(enabled);
            let mut core = Core::new(&p, SetAssociativeCache::from_config(&p.l2));
            let mut dram = Dram::single_agent(&p.dram, p.core.clock_hz);
            for i in 0..20_000_u64 {
                core.step(Op::Load(i * 64), &mut dram, 0);
            }
            core.finish()
        };
        let off = prefetch_ipc(false);
        let on = prefetch_ipc(true);
        assert_eq!(off.prefetches, 0);
        assert!(on.prefetches > 9_000, "prefetches {}", on.prefetches);
        // Sequential stream with prefetch-on-miss: demands alternate
        // miss/hit and each prefetch probe is itself a recorded miss, so
        // exactly one access in three hits.
        assert!(
            (on.l2.hit_rate() - 1.0 / 3.0).abs() < 0.02,
            "hit rate {}",
            on.l2.hit_rate()
        );
        assert!(on.ipc() > off.ipc(), "on {} off {}", on.ipc(), off.ipc());
    }

    #[test]
    fn report_before_finish_has_outstanding() {
        let (mut core, mut dram) = fixture(6.4, 1024);
        core.step(Op::Load(1 << 20), &mut dram, 0);
        let early = core.report();
        let done = core.finish();
        assert!(done.cycles >= early.cycles);
        assert_eq!(done.instructions, 1);
    }

    #[test]
    fn ipc_zero_for_empty_run() {
        let (mut core, _dram) = fixture(6.4, 1024);
        assert_eq!(core.finish().ipc(), 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut core, mut dram) = fixture(3.2, 256);
            for i in 0..5_000_u64 {
                core.step(Op::Load((i * 8191) % (1 << 22)), &mut dram, 0);
            }
            core.finish().cycles
        };
        assert_eq!(run(), run());
    }
}
