//! Single-channel DRAM timing with bank structure and per-agent bandwidth
//! shares.
//!
//! The model captures what the REF fitting pipeline observes: a closed-page
//! access latency, bank occupancy that limits per-bank throughput, and a
//! per-agent token bucket that enforces the allocated share of channel
//! bandwidth (the paper assumes shares are enforceable by known schedulers
//! such as weighted fair queueing; `ref-sched` implements those).
//!
//! Simplifications relative to DRAMSim2, documented in `DESIGN.md`:
//! requests are serviced in arrival order per bank (rank-then-bank
//! round-robin emerges from bank interleaving rather than an explicit
//! scheduler queue). The paper's Table-1 controller is closed-page, so row
//! hits never occur in the reproduction configuration; an open-page mode
//! with row-buffer tracking is available for the `ablation_page_policy`
//! study ([`PagePolicy`]).

use crate::config::{DramConfig, PagePolicy};

/// Per-agent bandwidth regulator (token bucket over 64-byte bursts).
#[derive(Debug, Clone)]
struct AgentPort {
    /// Earliest cycle at which the next burst may start, as enforced by the
    /// agent's bandwidth share.
    next_token: f64,
    /// Cycles between bursts at the allocated bandwidth.
    cycles_per_burst: f64,
    /// Requests issued by this agent.
    requests: u64,
}

/// Counters describing DRAM activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Total requests serviced.
    pub requests: u64,
    /// Sum over requests of (completion - arrival), in cycles.
    pub total_latency_cycles: u64,
    /// Requests that hit an open row (always zero under the closed-page
    /// policy).
    pub row_hits: u64,
}

impl DramStats {
    /// Mean request latency in cycles; `0.0` with no requests.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.requests as f64
        }
    }
}

/// A single-channel DRAM with banks and per-agent bandwidth shares.
///
/// # Examples
///
/// ```
/// use ref_sim::config::PlatformConfig;
/// use ref_sim::dram::Dram;
///
/// let p = PlatformConfig::asplos14();
/// let mut d = Dram::new(&p.dram, p.core.clock_hz, &[1.0]);
/// let done = d.access(0, 0x1000, 0);
/// assert!(done >= p.dram.access_latency_cycles);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    access_latency: u64,
    bank_occupancy: u64,
    /// `log2(burst bytes)`: bank striping by shift instead of division.
    burst_shift: u32,
    /// `bank count - 1` when the bank count is a power of two; `None`
    /// falls back to modulo on the request path.
    bank_mask: Option<u64>,
    page_policy: PagePolicy,
    row_hit_latency: u64,
    row_bytes: u64,
    /// `log2(row_bytes)` when the row size is a power of two.
    row_shift: Option<u32>,
    /// Cycle at which each bank becomes free, indexed `rank * banks + bank`.
    /// Allocated once at construction; the request path never allocates.
    bank_free: Vec<u64>,
    /// Open row per bank (`u64::MAX` = closed), only used under
    /// [`PagePolicy::OpenPage`].
    open_rows: Vec<u64>,
    ports: Vec<AgentPort>,
    stats: DramStats,
}

impl Dram {
    /// Creates a channel shared by agents with the given bandwidth shares.
    ///
    /// Each share is a fraction of the channel's peak bandwidth; shares must
    /// be positive and sum to at most 1 (small slack is allowed for
    /// round-off).
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty, any share is non-positive, or the sum
    /// exceeds `1 + 1e-9`.
    pub fn new(cfg: &DramConfig, clock_hz: f64, shares: &[f64]) -> Dram {
        assert!(!shares.is_empty(), "need at least one agent");
        assert!(
            shares.iter().all(|s| s.is_finite() && *s > 0.0),
            "bandwidth shares must be positive"
        );
        let total: f64 = shares.iter().sum();
        assert!(
            total <= 1.0 + 1e-9,
            "bandwidth shares sum to {total}, exceeding channel capacity"
        );
        let burst_bytes = 64_u64;
        let bytes_per_cycle = cfg.bandwidth.bytes_per_cycle(clock_hz);
        let ports = shares
            .iter()
            .map(|share| AgentPort {
                next_token: 0.0,
                cycles_per_burst: burst_bytes as f64 / (share * bytes_per_cycle),
                requests: 0,
            })
            .collect();
        let nbanks = cfg.ranks * cfg.banks_per_rank;
        Dram {
            access_latency: cfg.access_latency_cycles,
            bank_occupancy: cfg.bank_occupancy_cycles,
            burst_shift: burst_bytes.trailing_zeros(),
            bank_mask: (nbanks as u64).is_power_of_two().then(|| nbanks as u64 - 1),
            page_policy: cfg.page_policy,
            row_hit_latency: cfg.row_hit_latency_cycles,
            row_bytes: cfg.row_bytes,
            row_shift: cfg
                .row_bytes
                .is_power_of_two()
                .then(|| cfg.row_bytes.trailing_zeros()),
            bank_free: vec![0; nbanks],
            open_rows: vec![u64::MAX; nbanks],
            ports,
            stats: DramStats::default(),
        }
    }

    /// Creates a channel dedicated to a single agent at full bandwidth.
    pub fn single_agent(cfg: &DramConfig, clock_hz: f64) -> Dram {
        Dram::new(cfg, clock_hz, &[1.0])
    }

    /// Services a 64-byte read for `agent` arriving at cycle `now`; returns
    /// the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn access(&mut self, agent: usize, addr: u64, now: u64) -> u64 {
        assert!(agent < self.ports.len(), "agent {agent} out of range");
        // Bank interleave on block address bits (rank-then-bank striping),
        // by shift/mask when the geometry is a power of two.
        let block = addr >> self.burst_shift;
        let bank = match self.bank_mask {
            Some(mask) => (block & mask) as usize,
            None => (block % self.bank_free.len() as u64) as usize,
        };
        let latency = match self.page_policy {
            PagePolicy::ClosedPage => self.access_latency,
            PagePolicy::OpenPage => {
                // The row id is only needed here, off the closed-page
                // (Table-1) hot path.
                let row = match self.row_shift {
                    Some(shift) => addr >> shift,
                    None => addr / self.row_bytes,
                };
                if self.open_rows[bank] == row {
                    self.stats.row_hits = self.stats.row_hits.saturating_add(1);
                    self.row_hit_latency
                } else {
                    self.open_rows[bank] = row;
                    self.access_latency
                }
            }
        };
        let port = &mut self.ports[agent];
        let token_ready = port.next_token.max(now as f64);
        let start = (token_ready.ceil() as u64)
            .max(self.bank_free[bank])
            .max(now);
        let completion = start + latency;
        self.bank_free[bank] = start + self.bank_occupancy.min(latency);
        port.next_token = start as f64 + port.cycles_per_burst;
        port.requests = port.requests.saturating_add(1);
        self.stats.requests = self.stats.requests.saturating_add(1);
        self.stats.total_latency_cycles = self
            .stats
            .total_latency_cycles
            .saturating_add(completion.saturating_sub(now));
        completion
    }

    /// Requests issued by one agent so far.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn agent_requests(&self, agent: usize) -> u64 {
        self.ports[agent].requests
    }

    /// Accumulated channel statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Number of agents sharing the channel.
    pub fn num_agents(&self) -> usize {
        self.ports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bandwidth, PlatformConfig};

    fn dram_with_bw(gb: f64, shares: &[f64]) -> Dram {
        let p = PlatformConfig::asplos14().with_bandwidth(Bandwidth::from_gb_per_sec(gb));
        Dram::new(&p.dram, p.core.clock_hz, shares)
    }

    #[test]
    fn isolated_access_pays_access_latency() {
        let mut d = dram_with_bw(12.8, &[1.0]);
        let done = d.access(0, 0, 1000);
        assert_eq!(done, 1000 + 126);
        assert_eq!(d.stats().requests, 1);
    }

    #[test]
    fn token_bucket_limits_throughput() {
        // 0.8 GB/s at 3 GHz = 0.2667 B/cycle; 64-byte bursts every 240
        // cycles. Issue 100 back-to-back requests at distinct banks and
        // check the finish time is bandwidth-limited, not bank-limited.
        let mut d = dram_with_bw(0.8, &[1.0]);
        let mut last = 0;
        for i in 0..100_u64 {
            last = d.access(0, i * 64, 0);
        }
        // 100 bursts at 240 cycles/burst = 24000 cycles of token delay.
        assert!(last >= 99 * 240, "finished too early: {last}");
        assert!(last <= 100 * 240 + 126 + 45, "finished too late: {last}");
    }

    #[test]
    fn higher_bandwidth_finishes_sooner() {
        let run = |gb: f64| {
            let mut d = dram_with_bw(gb, &[1.0]);
            let mut last = 0;
            for i in 0..200_u64 {
                last = d.access(0, i * 64, 0);
            }
            last
        };
        let slow = run(0.8);
        let fast = run(12.8);
        assert!(fast < slow / 4, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut d = dram_with_bw(12.8, &[1.0]);
        // Same bank: second access must wait for bank occupancy.
        let first = d.access(0, 0, 0);
        let nbanks = 16_u64;
        let second = d.access(0, nbanks * 64, 0);
        assert!(second > first - 126 + 45, "second {second} first {first}");
        // Different bank at high bandwidth: only token spacing applies.
        let mut d2 = dram_with_bw(12.8, &[1.0]);
        let a = d2.access(0, 0, 0);
        let b = d2.access(0, 64, 0);
        assert!(b - a < 45, "different banks should overlap: {a} {b}");
    }

    #[test]
    fn shares_throttle_each_agent() {
        // Two agents, 25% / 75% of 12.8 GB/s, on disjoint banks (even vs
        // odd) so only the token buckets limit progress. Compare the
        // completion of each agent's 50th request.
        let mut d = dram_with_bw(12.8, &[0.25, 0.75]);
        let mut done = [0_u64; 2];
        for i in 0..50_u64 {
            done[0] = d.access(0, (2 * i) * 64, 0);
            done[1] = d.access(1, (2 * i + 1) * 64, 0);
        }
        // Agent 0 gets 3.2 GB/s -> 60 cycles/burst; agent 1 gets 9.6 GB/s
        // -> 20 cycles/burst.
        assert!(done[0] > 2 * done[1], "{done:?}");
        assert_eq!(d.agent_requests(0), 50);
        assert_eq!(d.agent_requests(1), 50);
    }

    #[test]
    fn open_page_rewards_row_locality() {
        use crate::config::PagePolicy;
        let p = PlatformConfig::asplos14().with_page_policy(PagePolicy::OpenPage);
        let mut d = Dram::new(&p.dram, p.core.clock_hz, &[1.0]);
        // Two sequential bursts in the same row and bank (rows span 2 KiB
        // = 32 blocks; blocks 0 and 16 share bank 0 of 16 banks).
        let a = d.access(0, 0, 0);
        let b = d.access(0, 16 * 64, a);
        assert_eq!(a, 126, "first access opens the row");
        assert_eq!(b - a, 42, "second access is a row hit");
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn closed_page_never_counts_row_hits() {
        let mut d = dram_with_bw(12.8, &[1.0]);
        for i in 0..10 {
            let _ = d.access(0, i % 2 * 64, i);
        }
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn open_page_row_conflict_pays_full_latency() {
        use crate::config::PagePolicy;
        let p = PlatformConfig::asplos14().with_page_policy(PagePolicy::OpenPage);
        let mut d = Dram::new(&p.dram, p.core.clock_hz, &[1.0]);
        let a = d.access(0, 0, 0); // opens row 0 in bank 0
                                   // Block 1024 blocks later: same bank (1024 % 16 == 0), row 32.
        let b = d.access(0, 1024 * 64, a);
        assert_eq!(b - a, 126, "row conflict re-opens");
        assert_eq!(d.stats().row_hits, 0);
    }

    #[test]
    fn mean_latency_accumulates() {
        let mut d = dram_with_bw(12.8, &[1.0]);
        d.access(0, 0, 0);
        assert!(d.stats().mean_latency() >= 126.0);
        assert_eq!(DramStats::default().mean_latency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeding channel capacity")]
    fn rejects_oversubscribed_shares() {
        let _ = dram_with_bw(12.8, &[0.7, 0.7]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_share() {
        let _ = dram_with_bw(12.8, &[0.0, 0.5]);
    }
}
