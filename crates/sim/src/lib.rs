//! # ref-sim
//!
//! A cycle-level chip-multiprocessor timing simulator: the from-scratch
//! stand-in for MARSSx86 + DRAMSim2 in the REF (Resource Elasticity
//! Fairness) reproduction.
//!
//! The simulator models exactly what the REF pipeline measures — IPC as a
//! function of allocated last-level-cache capacity and memory bandwidth:
//!
//! - [`config`] — platform parameters mirroring Table 1 of the paper
//!   (3 GHz 4-wide cores, 32 KB L1, 128 KB–2 MB L2, 0.8–12.8 GB/s DRAM).
//! - [`cache`] — set-associative caches with LRU and way partitioning.
//! - [`dram`] — single-channel closed-page DRAM with banks and per-agent
//!   bandwidth shares (token buckets).
//! - [`core`] — an out-of-order core timing model with memory-level
//!   parallelism bounded by MSHRs.
//! - [`system`] — single-core profiling runs and multi-core partitioned
//!   runs that enforce a REF allocation.
//!
//! # Examples
//!
//! Profile a streaming workload on the Table-1 platform:
//!
//! ```
//! use ref_sim::config::PlatformConfig;
//! use ref_sim::system::SingleCoreSystem;
//! use ref_sim::trace::Op;
//!
//! let mut sys = SingleCoreSystem::new(&PlatformConfig::asplos14());
//! let trace = (0..u64::MAX).map(|i| Op::Load(i * 64));
//! let report = sys.run(trace, 10_000);
//! assert!(report.ipc() > 0.0 && report.ipc() <= 4.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod system;
pub mod trace;

pub use config::PlatformConfig;
pub use core::SimReport;
pub use system::{MulticoreSystem, SingleCoreSystem};
pub use trace::Op;
