//! Whole-system compositions: single-core profiling runs and multi-core
//! partitioned runs.
//!
//! [`SingleCoreSystem`] is what the profiling sweep uses: one core with the
//! full L2 of a given capacity and the full channel bandwidth, replaying a
//! workload trace and reporting IPC. [`MulticoreSystem`] enforces a REF
//! allocation in the simulator: each agent receives a way-partitioned slice
//! of the shared L2 and a token-bucket share of DRAM bandwidth, and the
//! per-agent IPC can be compared against the fitted utility's prediction.

use crate::cache::{partition_ways, SetAssociativeCache};
use crate::config::PlatformConfig;
use crate::core::{Core, SimReport};
use crate::dram::Dram;
use crate::trace::Op;

/// One core, one L2, one DRAM channel at full bandwidth.
///
/// # Examples
///
/// ```
/// use ref_sim::config::PlatformConfig;
/// use ref_sim::system::SingleCoreSystem;
/// use ref_sim::trace::Op;
///
/// let mut sys = SingleCoreSystem::new(&PlatformConfig::asplos14());
/// let trace = (0..1000u64).map(|i| Op::Load(i * 64));
/// let report = sys.run(trace, 1000);
/// assert_eq!(report.instructions, 1000);
/// assert!(report.ipc() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SingleCoreSystem {
    platform: PlatformConfig,
}

impl SingleCoreSystem {
    /// Creates a system from platform parameters.
    pub fn new(platform: &PlatformConfig) -> SingleCoreSystem {
        SingleCoreSystem {
            platform: *platform,
        }
    }

    /// Replays up to `max_instructions` from `stream` and reports timing.
    ///
    /// Each call simulates from cold caches, so repeated runs are
    /// independent and deterministic.
    pub fn run<S: Iterator<Item = Op>>(&mut self, stream: S, max_instructions: u64) -> SimReport {
        self.run_with_warmup(stream, 0, max_instructions)
    }

    /// Replays `warmup` instructions to populate the caches, then measures
    /// the following `measured` instructions.
    ///
    /// Discarding the cold-start transient matters for workloads whose
    /// working set is comparable to the measurement length; the paper's
    /// region-of-interest methodology has the same purpose.
    pub fn run_with_warmup<S: Iterator<Item = Op>>(
        &mut self,
        stream: S,
        warmup: u64,
        measured: u64,
    ) -> SimReport {
        let mut core = Core::new(
            &self.platform,
            SetAssociativeCache::from_config(&self.platform.l2),
        );
        let mut dram = Dram::single_agent(&self.platform.dram, self.platform.core.clock_hz);
        let mut stream = stream;
        for op in stream.by_ref().take(warmup as usize) {
            core.step(op, &mut dram, 0);
        }
        let baseline = core.report();
        for op in stream.take(measured as usize) {
            core.step(op, &mut dram, 0);
        }
        core.finish().since(&baseline)
    }
}

/// N cores sharing a way-partitioned L2 and a bandwidth-partitioned DRAM
/// channel.
#[derive(Debug)]
pub struct MulticoreSystem {
    platform: PlatformConfig,
    cache_shares: Vec<f64>,
    bandwidth_shares: Vec<f64>,
    dependent_load_fractions: Option<Vec<f64>>,
}

impl MulticoreSystem {
    /// Creates a partitioned system.
    ///
    /// `cache_shares` and `bandwidth_shares` are each agent's fraction of
    /// the L2 capacity and channel bandwidth. Cache shares are rounded to
    /// whole ways with at least one way per agent
    /// ([`partition_ways`]); bandwidth shares are enforced exactly by the
    /// DRAM token buckets.
    ///
    /// # Panics
    ///
    /// Panics if the share vectors have different lengths or are empty, if
    /// bandwidth shares are non-positive or sum above 1, or if there are
    /// more agents than L2 ways.
    pub fn new(
        platform: &PlatformConfig,
        cache_shares: &[f64],
        bandwidth_shares: &[f64],
    ) -> MulticoreSystem {
        assert_eq!(
            cache_shares.len(),
            bandwidth_shares.len(),
            "one cache share and one bandwidth share per agent"
        );
        assert!(!cache_shares.is_empty(), "need at least one agent");
        MulticoreSystem {
            platform: *platform,
            cache_shares: cache_shares.to_vec(),
            bandwidth_shares: bandwidth_shares.to_vec(),
            dependent_load_fractions: None,
        }
    }

    /// Overrides the dependent-load fraction per agent (a property of each
    /// agent's code rather than of the platform).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the number of agents.
    pub fn with_dependent_load_fractions(mut self, fractions: Vec<f64>) -> MulticoreSystem {
        assert_eq!(
            fractions.len(),
            self.num_agents(),
            "one dependence fraction per agent"
        );
        self.dependent_load_fractions = Some(fractions);
        self
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.cache_shares.len()
    }

    /// The way counts each agent receives after rounding.
    pub fn allocated_ways(&self) -> Vec<usize> {
        partition_ways(self.platform.l2.ways, &self.cache_shares)
    }

    /// Runs every agent for `instructions_per_agent` and reports per-agent
    /// timing.
    ///
    /// Agents are interleaved in simulated-time order (the agent with the
    /// smallest core clock steps next), so DRAM requests arrive in roughly
    /// global time order and a stalled agent cannot reserve banks at
    /// far-future times ahead of faster agents.
    ///
    /// # Panics
    ///
    /// Panics if `streams.len()` differs from the number of agents.
    pub fn run<S: Iterator<Item = Op>>(
        &mut self,
        streams: Vec<S>,
        instructions_per_agent: u64,
    ) -> Vec<SimReport> {
        assert_eq!(
            streams.len(),
            self.num_agents(),
            "one instruction stream per agent"
        );
        let ways = self.allocated_ways();
        let sets = self.platform.l2.sets();
        let block = self.platform.l2.block_bytes;
        let mut cores: Vec<Core> = ways
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let mut platform = self.platform;
                if let Some(fracs) = &self.dependent_load_fractions {
                    platform.core.dependent_load_fraction = fracs[i];
                }
                Core::new(&platform, SetAssociativeCache::new(sets, w, block))
            })
            .collect();
        let mut dram = Dram::new(
            &self.platform.dram,
            self.platform.core.clock_hz,
            &self.bandwidth_shares,
        );
        let mut streams: Vec<S> = streams;
        let mut remaining = vec![instructions_per_agent; cores.len()];
        loop {
            let next = (0..cores.len())
                .filter(|&a| remaining[a] > 0)
                .min_by(|&a, &b| {
                    cores[a]
                        .now()
                        .partial_cmp(&cores[b].now())
                        .expect("core clocks are finite")
                });
            let Some(agent) = next else { break };
            match streams[agent].next() {
                Some(op) => {
                    cores[agent].step(op, &mut dram, agent);
                    remaining[agent] -= 1;
                }
                None => remaining[agent] = 0,
            }
        }
        cores.iter_mut().map(|c| c.finish()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bandwidth, CacheSize};

    fn strided(seed: u64) -> impl Iterator<Item = Op> {
        (0..u64::MAX).map(move |i| Op::Load((seed + i) * 64))
    }

    fn looping(working_set_blocks: u64) -> impl Iterator<Item = Op> {
        (0..u64::MAX).map(move |i| Op::Load((i % working_set_blocks) * 64))
    }

    #[test]
    fn single_core_deterministic() {
        let p = PlatformConfig::asplos14();
        let mut sys = SingleCoreSystem::new(&p);
        let a = sys.run(strided(0), 10_000);
        let b = sys.run(strided(0), 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn single_core_counts_instructions() {
        let p = PlatformConfig::asplos14();
        let mut sys = SingleCoreSystem::new(&p);
        let r = sys.run(strided(0), 5_000);
        assert_eq!(r.instructions, 5_000);
        assert!(r.cycles > 0.0);
    }

    #[test]
    fn single_core_honors_short_stream() {
        let p = PlatformConfig::asplos14();
        let mut sys = SingleCoreSystem::new(&p);
        let r = sys.run(strided(0).take(100), 5_000);
        assert_eq!(r.instructions, 100);
    }

    #[test]
    fn multicore_partitions_ways() {
        let p = PlatformConfig::asplos14();
        let sys = MulticoreSystem::new(&p, &[0.75, 0.25], &[0.5, 0.5]);
        assert_eq!(sys.allocated_ways(), vec![6, 2]);
        assert_eq!(sys.num_agents(), 2);
    }

    #[test]
    fn bandwidth_share_shapes_streaming_ipc() {
        // Two identical streaming agents with very different bandwidth
        // shares: the richer agent must achieve higher IPC.
        let p = PlatformConfig::asplos14()
            .with_bandwidth(Bandwidth::from_gb_per_sec(1.6))
            .with_l2_size(CacheSize::from_kib(256));
        let mut sys = MulticoreSystem::new(&p, &[0.5, 0.5], &[0.8, 0.2]);
        let reports = sys.run(vec![strided(0), strided(1 << 30)], 20_000);
        assert!(
            reports[0].ipc() > 1.5 * reports[1].ipc(),
            "rich {} poor {}",
            reports[0].ipc(),
            reports[1].ipc()
        );
    }

    #[test]
    fn cache_share_shapes_reuse_ipc() {
        // Two agents walking 512 KiB working sets; one gets 7/8 of a 1 MiB
        // L2 (fits), the other 1/8 (thrashes).
        let p = PlatformConfig::asplos14().with_bandwidth(Bandwidth::from_gb_per_sec(3.2));
        let blocks = 512 * 1024 / 64;
        let mut sys = MulticoreSystem::new(&p, &[0.875, 0.125], &[0.5, 0.5]);
        let reports = sys.run(vec![looping(blocks), looping(blocks)], 60_000);
        assert!(
            reports[0].ipc() > 1.3 * reports[1].ipc(),
            "big {} small {}",
            reports[0].ipc(),
            reports[1].ipc()
        );
        assert!(reports[0].l2.hit_rate() > reports[1].l2.hit_rate());
    }

    #[test]
    #[should_panic(expected = "one instruction stream per agent")]
    fn multicore_checks_stream_count() {
        let p = PlatformConfig::asplos14();
        let mut sys = MulticoreSystem::new(&p, &[0.5, 0.5], &[0.5, 0.5]);
        let _ = sys.run(vec![strided(0)], 10);
    }

    #[test]
    #[should_panic(expected = "one cache share")]
    fn multicore_checks_share_lengths() {
        let p = PlatformConfig::asplos14();
        let _ = MulticoreSystem::new(&p, &[0.5, 0.5], &[1.0]);
    }
}
