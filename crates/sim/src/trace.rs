//! Instruction traces consumed by the timing model.
//!
//! Workload generators (crate `ref-workloads`) produce iterators of [`Op`];
//! the core model ([`crate::core`]) replays them against the memory
//! hierarchy. Keeping the interface at the instruction level lets the same
//! trace drive both single-core profiling and multi-core partitioned runs.

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A non-memory instruction (ALU, branch, ...).
    Compute,
    /// A load from the given byte address.
    Load(u64),
    /// A store to the given byte address.
    Store(u64),
}

impl Op {
    /// The byte address touched, if this is a memory operation.
    pub fn address(self) -> Option<u64> {
        match self {
            Op::Compute => None,
            Op::Load(a) | Op::Store(a) => Some(a),
        }
    }

    /// Whether this instruction accesses memory.
    pub fn is_memory(self) -> bool {
        !matches!(self, Op::Compute)
    }
}

/// A finite or unbounded stream of instructions.
///
/// Blanket-implemented for every iterator over [`Op`], so workload
/// generators just implement `Iterator`.
pub trait InstructionStream: Iterator<Item = Op> {}

impl<T: Iterator<Item = Op>> InstructionStream for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_extraction() {
        assert_eq!(Op::Compute.address(), None);
        assert_eq!(Op::Load(64).address(), Some(64));
        assert_eq!(Op::Store(128).address(), Some(128));
    }

    #[test]
    fn memory_classification() {
        assert!(!Op::Compute.is_memory());
        assert!(Op::Load(0).is_memory());
        assert!(Op::Store(0).is_memory());
    }

    #[test]
    fn any_iterator_is_a_stream() {
        fn takes_stream<S: InstructionStream>(s: S) -> usize {
            s.count()
        }
        let v = vec![Op::Compute, Op::Load(0)];
        assert_eq!(takes_stream(v.into_iter()), 2);
    }
}
