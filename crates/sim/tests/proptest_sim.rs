//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use ref_sim::cache::{partition_ways, SetAssociativeCache};
use ref_sim::config::{Bandwidth, PlatformConfig};
use ref_sim::dram::Dram;
use ref_sim::system::SingleCoreSystem;
use ref_sim::trace::Op;

fn addresses() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1 << 20), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Counter consistency on arbitrary streams.
    #[test]
    fn cache_stats_are_consistent(addrs in addresses()) {
        let mut c = SetAssociativeCache::new(16, 4, 64);
        for &a in &addrs {
            let _ = c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert!(s.hits <= s.accesses);
        prop_assert_eq!(s.misses(), s.accesses - s.hits);
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
    }

    /// The most recently accessed block is always resident afterwards.
    #[test]
    fn last_access_is_resident(addrs in addresses()) {
        let mut c = SetAssociativeCache::new(8, 2, 64);
        for &a in &addrs {
            let _ = c.access(a);
            prop_assert!(c.probe(a), "block of {a} evicted immediately");
        }
    }

    /// LRU inclusion: a larger cache (same sets, more ways) hits at least
    /// as often on any stream.
    #[test]
    fn more_ways_never_hurt(addrs in addresses()) {
        let mut small = SetAssociativeCache::new(16, 2, 64);
        let mut large = SetAssociativeCache::new(16, 8, 64);
        for &a in &addrs {
            let _ = small.access(a);
            let _ = large.access(a);
        }
        prop_assert!(large.stats().hits >= small.stats().hits);
    }

    /// Way partitioning conserves ways and respects minimums.
    #[test]
    fn partition_ways_conserves(
        shares in prop::collection::vec(0.01..10.0f64, 1..8),
        extra in 0usize..16,
    ) {
        let total = shares.len() + extra;
        let ways = partition_ways(total, &shares);
        prop_assert_eq!(ways.iter().sum::<usize>(), total);
        prop_assert!(ways.iter().all(|&w| w >= 1));
    }

    /// Larger shares never receive fewer ways.
    #[test]
    fn partition_ways_is_monotone(a in 0.1..5.0f64, b in 0.1..5.0f64) {
        let ways = partition_ways(16, &[a, b]);
        if a > b {
            prop_assert!(ways[0] >= ways[1]);
        } else if b > a {
            prop_assert!(ways[1] >= ways[0]);
        }
    }

    /// DRAM completions never precede arrival plus the access latency, and
    /// per-agent counters add up.
    #[test]
    fn dram_completion_lower_bound(
        reqs in prop::collection::vec((0u64..1 << 16, 0u64..10_000), 1..100),
    ) {
        let p = PlatformConfig::asplos14();
        let mut d = Dram::new(&p.dram, p.core.clock_hz, &[0.5, 0.5]);
        let mut count = [0u64; 2];
        for (i, &(addr, now)) in reqs.iter().enumerate() {
            let agent = i % 2;
            let done = d.access(agent, addr * 64, now);
            count[agent] += 1;
            prop_assert!(done >= now + p.dram.access_latency_cycles);
        }
        prop_assert_eq!(d.agent_requests(0), count[0]);
        prop_assert_eq!(d.agent_requests(1), count[1]);
        prop_assert_eq!(d.stats().requests, reqs.len() as u64);
    }

    /// IPC is always within (0, issue width] for any nonempty run.
    #[test]
    fn ipc_bounds(seed in 0u64..1000) {
        let p = PlatformConfig::asplos14().with_bandwidth(Bandwidth::from_gb_per_sec(3.2));
        let mut sys = SingleCoreSystem::new(&p);
        let stream = (0..u64::MAX).map(move |i| {
            if (i + seed) % 3 == 0 {
                Op::Load(((i * 2654435761 + seed) % (1 << 22)) & !63)
            } else {
                Op::Compute
            }
        });
        let r = sys.run(stream, 5_000);
        prop_assert!(r.ipc() > 0.0);
        prop_assert!(r.ipc() <= f64::from(p.core.issue_width) + 1e-9);
        prop_assert_eq!(r.instructions, 5_000);
    }

    /// Warmup intervals compose: a run with warmup reports exactly the
    /// instructions of the measured interval.
    #[test]
    fn warmup_interval_accounting(warm in 0u64..3000, measured in 1u64..3000) {
        let p = PlatformConfig::asplos14();
        let mut sys = SingleCoreSystem::new(&p);
        let stream = (0..u64::MAX).map(|i| Op::Load((i * 64) % (1 << 20)));
        let r = sys.run_with_warmup(stream, warm, measured);
        prop_assert_eq!(r.instructions, measured);
        prop_assert!(r.cycles > 0.0);
    }
}
