//! Log-barrier interior-point method for inequality-constrained convex
//! minimization.
//!
//! Solves `minimize f0(x) subject to f_i(x) <= 0` where `f0` and every `f_i`
//! implement [`Objective`] and are convex. This is the engine behind the
//! geometric-programming layer ([`crate::gp`]) that replaces CVX in the REF
//! paper's evaluation.
//!
//! The implementation follows the classic two-phase scheme (Boyd &
//! Vandenberghe, ch. 11): a phase-I problem finds a strictly feasible point
//! when the caller's start is not, and the central path is then traced by
//! minimizing `t f0(x) + phi(x)` with damped Newton for geometrically
//! increasing `t`, where `phi(x) = -sum_i log(-f_i(x))`.

use crate::error::{Result, SolverError};
use crate::func::Objective;
use crate::matrix::Matrix;
use crate::newton::{self, NewtonOptions};

/// Options controlling the interior-point iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierOptions {
    /// Factor by which the path parameter `t` grows each outer iteration.
    pub mu: f64,
    /// Initial path parameter.
    pub t0: f64,
    /// Target duality gap `m / t`.
    pub tolerance: f64,
    /// Maximum number of outer (centering) iterations.
    pub max_outer_iterations: usize,
    /// Options for the inner Newton solves.
    pub newton: NewtonOptions,
    /// Margin by which phase I must clear zero to declare strict
    /// feasibility.
    pub feasibility_margin: f64,
}

impl Default for BarrierOptions {
    fn default() -> BarrierOptions {
        BarrierOptions {
            mu: 20.0,
            t0: 1.0,
            tolerance: 1e-6,
            max_outer_iterations: 100,
            newton: NewtonOptions {
                tolerance: 1e-9,
                max_iterations: 300,
                ..NewtonOptions::default()
            },
            feasibility_margin: 1e-9,
        }
    }
}

/// Outcome of a barrier-method minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierResult {
    /// Minimizer.
    pub x: Vec<f64>,
    /// Objective value at the minimizer.
    pub value: f64,
    /// Number of outer (centering) iterations.
    pub outer_iterations: usize,
    /// Path parameter `t` at which the final centering converged. Feeding
    /// it (divided by `mu`) back into [`minimize_warm`] alongside the final
    /// `x` lets a re-solve of a nearby problem skip most of the path.
    pub final_t: f64,
}

/// The barrier-augmented objective `t f0(x) - sum_i log(-f_i(x))`.
struct BarrierObjective<'a> {
    t: f64,
    f0: &'a dyn Objective,
    constraints: &'a [&'a dyn Objective],
}

impl Objective for BarrierObjective<'_> {
    fn dim(&self) -> usize {
        self.f0.dim()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let mut v = self.t * self.f0.value(x);
        for c in self.constraints {
            let fi = c.value(x);
            if fi >= 0.0 || !fi.is_finite() {
                return f64::INFINITY;
            }
            v -= (-fi).ln();
        }
        v
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g: Vec<f64> = self.f0.gradient(x).iter().map(|v| v * self.t).collect();
        for c in self.constraints {
            let fi = c.value(x);
            let gi = c.gradient(x);
            let w = -1.0 / fi; // fi < 0 at feasible points
            for (gj, gij) in g.iter_mut().zip(&gi) {
                *gj += w * gij;
            }
        }
        g
    }

    fn hessian(&self, x: &[f64]) -> Matrix {
        let mut h = self.f0.hessian(x).scaled(self.t);
        for c in self.constraints {
            let fi = c.value(x);
            let gi = c.gradient(x);
            let hi = c.hessian(x);
            let w1 = 1.0 / (fi * fi);
            let w2 = -1.0 / fi;
            h.rank_one_update(w1, &gi);
            h.axpy_matrix(w2, &hi).expect("dimensions agree");
        }
        h
    }
}

/// Phase-I objective over the extended variable `(x, s)`: minimize `s`.
struct PhaseIObjective {
    n: usize,
}

impl Objective for PhaseIObjective {
    fn dim(&self) -> usize {
        self.n + 1
    }

    fn value(&self, z: &[f64]) -> f64 {
        z[self.n]
    }

    fn gradient(&self, _z: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.n + 1];
        g[self.n] = 1.0;
        g
    }

    fn hessian(&self, _z: &[f64]) -> Matrix {
        Matrix::zeros(self.n + 1, self.n + 1)
    }
}

/// Phase-I constraint `f_i(x) - s <= 0` over the extended variable.
struct PhaseIConstraint<'a> {
    inner: &'a dyn Objective,
    n: usize,
}

impl Objective for PhaseIConstraint<'_> {
    fn dim(&self) -> usize {
        self.n + 1
    }

    fn value(&self, z: &[f64]) -> f64 {
        self.inner.value(&z[..self.n]) - z[self.n]
    }

    fn gradient(&self, z: &[f64]) -> Vec<f64> {
        let mut g = self.inner.gradient(&z[..self.n]);
        g.push(-1.0);
        g
    }

    fn hessian(&self, z: &[f64]) -> Matrix {
        let hi = self.inner.hessian(&z[..self.n]);
        let mut h = Matrix::zeros(self.n + 1, self.n + 1);
        for i in 0..self.n {
            for j in 0..self.n {
                h[(i, j)] = hi[(i, j)];
            }
        }
        h
    }
}

/// Returns the largest constraint value at `x`, or `None` when there are no
/// constraints.
pub fn max_violation(constraints: &[&dyn Objective], x: &[f64]) -> Option<f64> {
    constraints
        .iter()
        .map(|c| c.value(x))
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Minimizes `f0` subject to `f_i(x) <= 0` for every constraint.
///
/// `x0` is any starting point in the domain of the functions; a phase-I
/// solve is performed automatically if it is not strictly feasible.
///
/// # Errors
///
/// - [`SolverError::Infeasible`] if no strictly feasible point exists.
/// - [`SolverError::MaxIterationsExceeded`] if the central path does not
///   reach the target gap.
/// - Errors propagated from the inner Newton solves.
///
/// # Examples
///
/// Minimize `x + y` subject to `x^2 + y^2 <= 1` (optimum at
/// `(-1/sqrt 2, -1/sqrt 2)`):
///
/// ```
/// use ref_solver::barrier::{minimize, BarrierOptions};
/// use ref_solver::func::{Affine, Objective, Quadratic};
/// use ref_solver::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// struct Disk;
/// impl Objective for Disk {
///     fn dim(&self) -> usize { 2 }
///     fn value(&self, x: &[f64]) -> f64 { x[0] * x[0] + x[1] * x[1] - 1.0 }
///     fn gradient(&self, x: &[f64]) -> Vec<f64> { vec![2.0 * x[0], 2.0 * x[1]] }
///     fn hessian(&self, _x: &[f64]) -> Matrix { Matrix::diagonal(&[2.0, 2.0]) }
/// }
/// let objective = Affine::new(vec![1.0, 1.0], 0.0);
/// let disk = Disk;
/// let constraints: Vec<&dyn Objective> = vec![&disk];
/// let r = minimize(&objective, &constraints, &[0.0, 0.0], &BarrierOptions::default())?;
/// let s = 1.0 / 2.0_f64.sqrt();
/// assert!((r.x[0] + s).abs() < 1e-4);
/// assert!((r.x[1] + s).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn minimize(
    f0: &dyn Objective,
    constraints: &[&dyn Objective],
    x0: &[f64],
    opts: &BarrierOptions,
) -> Result<BarrierResult> {
    minimize_warm(f0, constraints, x0, opts, None)
}

/// [`minimize`] with an optional warm-started path parameter.
///
/// `t_start` overrides the initial path parameter `opts.t0`. A caller that
/// re-solves a slightly perturbed problem passes the previous result's
/// `x` as `x0` and something like `(prev.final_t / opts.mu).max(opts.t0)`
/// as `t_start`: the near-optimal start is already strictly feasible (so
/// phase I is skipped by the ordinary feasibility check) and the path
/// resumes close to where it ended instead of from `t0`, cutting the outer
/// iterations to one or two. With `t_start = None` this is exactly
/// [`minimize`] — same iterates bit for bit.
///
/// # Errors
///
/// As [`minimize`], plus [`SolverError::InvalidArgument`] for a
/// non-finite or non-positive `t_start`.
pub fn minimize_warm(
    f0: &dyn Objective,
    constraints: &[&dyn Objective],
    x0: &[f64],
    opts: &BarrierOptions,
    t_start: Option<f64>,
) -> Result<BarrierResult> {
    if let Some(t) = t_start {
        if !t.is_finite() || t <= 0.0 {
            return Err(SolverError::InvalidArgument(format!(
                "warm-start path parameter must be finite and positive, got {t}"
            )));
        }
    }
    if x0.len() != f0.dim() {
        return Err(SolverError::InvalidArgument(format!(
            "start point has dimension {}, objective expects {}",
            x0.len(),
            f0.dim()
        )));
    }
    for c in constraints {
        if c.dim() != f0.dim() {
            return Err(SolverError::InvalidArgument(
                "constraint dimension differs from objective dimension".to_string(),
            ));
        }
    }
    let x_start = match max_violation(constraints, x0) {
        Some(v) if v >= -opts.feasibility_margin => phase_one(constraints, x0, opts)?,
        _ => x0.to_vec(),
    };
    central_path(f0, constraints, &x_start, opts, t_start)
}

fn central_path(
    f0: &dyn Objective,
    constraints: &[&dyn Objective],
    x0: &[f64],
    opts: &BarrierOptions,
    t_start: Option<f64>,
) -> Result<BarrierResult> {
    let m = constraints.len();
    if m == 0 {
        // Unconstrained: a single Newton solve suffices.
        let r = newton::minimize(f0, x0, &opts.newton)?;
        return Ok(BarrierResult {
            x: r.x,
            value: r.value,
            outer_iterations: 1,
            final_t: t_start.unwrap_or(opts.t0),
        });
    }
    let mut x = x0.to_vec();
    let mut t = t_start.unwrap_or(opts.t0);
    for outer in 0..opts.max_outer_iterations {
        let barrier = BarrierObjective { t, f0, constraints };
        let r = newton::minimize(&barrier, &x, &opts.newton)?;
        x = r.x;
        if m as f64 / t < opts.tolerance {
            return Ok(BarrierResult {
                x: x.clone(),
                value: f0.value(&x),
                outer_iterations: outer + 1,
                final_t: t,
            });
        }
        t *= opts.mu;
    }
    Err(SolverError::MaxIterationsExceeded {
        iterations: opts.max_outer_iterations,
    })
}

/// Solves the phase-I problem to find a strictly feasible point.
fn phase_one(
    constraints: &[&dyn Objective],
    x0: &[f64],
    opts: &BarrierOptions,
) -> Result<Vec<f64>> {
    let n = x0.len();
    let worst = max_violation(constraints, x0).unwrap_or(0.0);
    if !worst.is_finite() {
        return Err(SolverError::InvalidArgument(
            "phase-I start point is outside the constraint domain".to_string(),
        ));
    }
    let mut z0 = x0.to_vec();
    z0.push(worst + 1.0);

    let objective = PhaseIObjective { n };
    let wrapped: Vec<PhaseIConstraint> = constraints
        .iter()
        .map(|c| PhaseIConstraint { inner: *c, n })
        .collect();
    // Keep the subproblem bounded. Without these the phase-I centering
    // problem need not have a minimizer: s >= -1 (any s < 0 already proves
    // strict feasibility), and a generous box |x_j - x0_j| <= B around the
    // start (B is huge relative to any sensible problem scaling, so it
    // never hides a feasible point in practice).
    const BOX: f64 = 50.0;
    let mut bounds: Vec<crate::func::Affine> = Vec::with_capacity(2 * n + 1);
    let mut s_coeffs = vec![0.0; n + 1];
    s_coeffs[n] = -1.0;
    bounds.push(crate::func::Affine::new(s_coeffs, -1.0));
    for j in 0..n {
        let mut up = vec![0.0; n + 1];
        up[j] = 1.0;
        bounds.push(crate::func::Affine::new(up, -(x0[j] + BOX)));
        let mut down = vec![0.0; n + 1];
        down[j] = -1.0;
        bounds.push(crate::func::Affine::new(down, x0[j] - BOX));
    }
    let mut refs: Vec<&dyn Objective> = wrapped.iter().map(|c| c as &dyn Objective).collect();
    for b in &bounds {
        refs.push(b as &dyn Objective);
    }

    // Trace the phase-I central path, stopping early once s is comfortably
    // negative.
    let m = refs.len().max(1) as f64;
    let mut z = z0;
    let mut t = opts.t0;
    for _ in 0..opts.max_outer_iterations {
        let barrier = BarrierObjective {
            t,
            f0: &objective,
            constraints: &refs,
        };
        let r = newton::minimize(&barrier, &z, &opts.newton)?;
        z = r.x;
        let s = z[n];
        if s < -10.0 * opts.feasibility_margin.max(1e-12) {
            return Ok(z[..n].to_vec());
        }
        if m / t < opts.tolerance {
            // Converged with s >= 0: no strictly feasible point.
            return Err(SolverError::Infeasible);
        }
        t *= opts.mu;
    }
    Err(SolverError::MaxIterationsExceeded {
        iterations: opts.max_outer_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Affine, LogSumExpAffine};

    #[test]
    fn linear_program_box() {
        // minimize -x - 2y s.t. x <= 1, y <= 1, -x <= 0, -y <= 0.
        let f0 = Affine::new(vec![-1.0, -2.0], 0.0);
        let c1 = Affine::new(vec![1.0, 0.0], -1.0);
        let c2 = Affine::new(vec![0.0, 1.0], -1.0);
        let c3 = Affine::new(vec![-1.0, 0.0], 0.0);
        let c4 = Affine::new(vec![0.0, -1.0], 0.0);
        let cons: Vec<&dyn Objective> = vec![&c1, &c2, &c3, &c4];
        let r = minimize(&f0, &cons, &[0.5, 0.5], &BarrierOptions::default()).unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.value + 3.0).abs() < 1e-3);
    }

    #[test]
    fn phase_one_recovers_feasibility() {
        // Start outside the box; phase I should pull the iterate inside.
        let f0 = Affine::new(vec![1.0, 0.0], 0.0);
        let c1 = Affine::new(vec![1.0, 0.0], -1.0);
        let c2 = Affine::new(vec![-1.0, 0.0], 0.0);
        let c3 = Affine::new(vec![0.0, 1.0], -1.0);
        let c4 = Affine::new(vec![0.0, -1.0], 0.0);
        let cons: Vec<&dyn Objective> = vec![&c1, &c2, &c3, &c4];
        let r = minimize(&f0, &cons, &[5.0, 5.0], &BarrierOptions::default()).unwrap();
        assert!(r.x[0].abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn infeasible_problem_detected() {
        // x <= -1 and -x <= -1 cannot both hold.
        let f0 = Affine::new(vec![1.0], 0.0);
        let c1 = Affine::new(vec![1.0], 1.0); // x + 1 <= 0
        let c2 = Affine::new(vec![-1.0], 1.0); // -x + 1 <= 0
        let cons: Vec<&dyn Objective> = vec![&c1, &c2];
        assert!(matches!(
            minimize(&f0, &cons, &[0.0], &BarrierOptions::default()),
            Err(SolverError::Infeasible)
        ));
    }

    #[test]
    fn unconstrained_falls_back_to_newton() {
        let a = Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap();
        let f = LogSumExpAffine::new(a, vec![0.0, 0.0]);
        let r = minimize(&f, &[], &[3.0], &BarrierOptions::default()).unwrap();
        assert!(r.x[0].abs() < 1e-6);
    }

    #[test]
    fn lse_constraint_respected() {
        // minimize -x - y subject to log(e^x + e^y) <= 0, i.e. e^x + e^y <= 1.
        let f0 = Affine::new(vec![-1.0, -1.0], 0.0);
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let lse = LogSumExpAffine::new(a, vec![0.0, 0.0]);
        let cons: Vec<&dyn Objective> = vec![&lse];
        let r = minimize(&f0, &cons, &[-2.0, -2.0], &BarrierOptions::default()).unwrap();
        // Symmetric optimum at x = y = log(1/2).
        let expect = 0.5_f64.ln();
        assert!((r.x[0] - expect).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] - expect).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn warm_restart_agrees_and_skips_most_of_the_path() {
        let f0 = Affine::new(vec![-1.0, -2.0], 0.0);
        let c1 = Affine::new(vec![1.0, 0.0], -1.0);
        let c2 = Affine::new(vec![0.0, 1.0], -1.0);
        let c3 = Affine::new(vec![-1.0, 0.0], 0.0);
        let c4 = Affine::new(vec![0.0, -1.0], 0.0);
        let cons: Vec<&dyn Objective> = vec![&c1, &c2, &c3, &c4];
        let opts = BarrierOptions::default();
        let cold = minimize(&f0, &cons, &[0.5, 0.5], &opts).unwrap();
        assert!(cold.final_t >= cons.len() as f64 / opts.tolerance / opts.mu);
        let warm = minimize_warm(
            &f0,
            &cons,
            &cold.x,
            &opts,
            Some((cold.final_t / opts.mu).max(opts.t0)),
        )
        .unwrap();
        assert!(warm.outer_iterations <= 2, "{}", warm.outer_iterations);
        assert!(warm.outer_iterations < cold.outer_iterations);
        for (w, c) in warm.x.iter().zip(&cold.x) {
            assert!((w - c).abs() < 1e-4, "{w} vs {c}");
        }
    }

    #[test]
    fn warm_start_rejects_bad_path_parameter() {
        let f0 = Affine::new(vec![1.0], 0.0);
        let c = Affine::new(vec![1.0], -1.0);
        let cons: Vec<&dyn Objective> = vec![&c];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                minimize_warm(&f0, &cons, &[0.0], &BarrierOptions::default(), Some(bad)),
                Err(SolverError::InvalidArgument(_))
            ));
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let f0 = Affine::new(vec![1.0], 0.0);
        let c = Affine::new(vec![1.0, 1.0], 0.0);
        let cons: Vec<&dyn Objective> = vec![&c];
        assert!(minimize(&f0, &cons, &[0.0], &BarrierOptions::default()).is_err());
        assert!(minimize(&f0, &[], &[0.0, 0.0], &BarrierOptions::default()).is_err());
    }

    #[test]
    fn max_violation_reports_worst() {
        let c1 = Affine::new(vec![1.0], -2.0);
        let c2 = Affine::new(vec![-1.0], 0.5);
        let cons: Vec<&dyn Objective> = vec![&c1, &c2];
        let v = max_violation(&cons, &[1.0]).unwrap();
        assert_eq!(v, -0.5);
        assert!(max_violation(&[], &[1.0]).is_none());
    }
}
