//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the Newton steps inside [`crate::newton`] and
//! [`crate::barrier`], where Hessians are symmetric and (after
//! regularization) positive definite.

use crate::error::{Result, SolverError};
use crate::matrix::Matrix;
use crate::tol;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// # Examples
///
/// ```
/// use ref_solver::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::new(&a)?;
/// let x = ch.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; the strict upper triangle is
    /// ignored, so callers may pass matrices with round-off asymmetry.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotSquare`] for rectangular input and
    /// [`SolverError::NotPositiveDefinite`] if a non-positive pivot is
    /// encountered.
    pub fn new(a: &Matrix) -> Result<Cholesky> {
        if !a.is_square() {
            return Err(SolverError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                {
                    // Row-slice the two gaxpy operands so the inner loop
                    // runs over contiguous memory without bounds checks.
                    let ri = &l.row(i)[..j];
                    let rj = &l.row(j)[..j];
                    for (x, y) in ri.iter().zip(rj) {
                        s -= x * y;
                    }
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(SolverError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `b.len()` differs from the
    /// dimension of `A`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(SolverError::ShapeMismatch(format!(
                "rhs length {} but matrix dimension {n}",
                b.len()
            )));
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = b[i];
            for k in 0..i {
                s -= row[k] * y[k];
            }
            y[i] = s / row[i];
        }
        // Back substitution: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A`, i.e. `2 * sum_i log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Solves the symmetric positive-definite system `A x = b`, retrying with an
/// increasing ridge `A + tau I` when `A` is not numerically positive
/// definite.
///
/// This is the standard Levenberg-style safeguard for Newton steps whose
/// Hessian loses definiteness to round-off.
///
/// # Errors
///
/// Returns [`SolverError::NotPositiveDefinite`] if even a heavily
/// regularized system cannot be factored, or any error from
/// [`Cholesky::solve`].
///
/// # Examples
///
/// ```
/// use ref_solver::{cholesky::solve_regularized, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-30]])?;
/// // Nearly singular, but a tiny ridge makes it solvable.
/// let x = solve_regularized(&a, &[1.0, 0.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn solve_regularized(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    match Cholesky::new(a) {
        Ok(ch) => return ch.solve(b),
        Err(SolverError::NotPositiveDefinite) => {}
        Err(e) => return Err(e),
    }
    // One clone serves every retry: each attempt rewrites the diagonal from
    // the saved original, which produces the same ridged matrix as a fresh
    // clone plus `+= tau` would.
    let mut tau = tol::initial_ridge(a.max_abs());
    let mut reg = a.clone();
    let orig_diag: Vec<f64> = (0..a.rows()).map(|i| a[(i, i)]).collect();
    for _ in 0..tol::RIDGE_RETRIES {
        for (i, &d) in orig_diag.iter().enumerate() {
            reg[(i, i)] = d + tau;
        }
        match Cholesky::new(&reg) {
            Ok(ch) => return ch.solve(b),
            Err(SolverError::NotPositiveDefinite) => tau *= tol::RIDGE_GROWTH,
            Err(e) => return Err(e),
        }
    }
    Err(SolverError::NotPositiveDefinite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn factors_and_reconstructs() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        let lt = l.transpose();
        let recon = l.matmul(&lt).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_close(recon[(i, j)], a[(i, j)], 1e-10);
            }
        }
        // Known factor from the classic example.
        assert_close(l[(0, 0)], 2.0, 1e-12);
        assert_close(l[(1, 0)], 6.0, 1e-12);
        assert_close(l[(2, 2)], 3.0, 1e-12);
    }

    #[test]
    fn solves_spd_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let x = Cholesky::new(&a).unwrap().solve(&[3.0, 3.0]).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 1.0, 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(SolverError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(SolverError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let a = Matrix::identity(2);
        let ch = Cholesky::new(&a).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_matches() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        assert_close(ch.log_det(), 36.0_f64.ln(), 1e-12);
    }

    #[test]
    fn regularized_solve_handles_semidefinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        // Singular; the ridge makes it solvable with a sensible answer.
        let x = solve_regularized(&a, &[2.0, 2.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        assert_close(x[0], x[1], 1e-6);
    }

    #[test]
    fn reads_lower_triangle_only() {
        let asym = Matrix::from_rows(&[&[4.0, 999.0], &[2.0, 3.0]]).unwrap();
        let sym = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let a = Cholesky::new(&asym).unwrap();
        let b = Cholesky::new(&sym).unwrap();
        assert_eq!(a.l(), b.l());
    }
}
