//! Error types shared by every solver in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra and optimization routines.
///
/// Every fallible public function in this crate returns
/// [`Result<T, SolverError>`](crate::Result). The variants distinguish
/// structural problems (shape mismatches), numerical failures (singular or
/// non-positive-definite systems), and optimization outcomes (infeasibility,
/// iteration limits).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// Operand shapes are incompatible, e.g. multiplying a `2x3` matrix by a
    /// `2x2` matrix. Carries a human-readable description of the mismatch.
    ShapeMismatch(String),
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// A factorization required a (numerically) non-singular matrix.
    Singular,
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite,
    /// The least-squares system is rank deficient.
    RankDeficient,
    /// An optimization problem has no strictly feasible point.
    Infeasible,
    /// The iteration limit was reached before convergence.
    MaxIterationsExceeded {
        /// The limit that was exhausted.
        iterations: usize,
    },
    /// An argument was outside its documented domain (e.g. a non-positive
    /// value where positivity is required).
    InvalidArgument(String),
    /// A numerical operation produced a non-finite value.
    NonFinite(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            SolverError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            SolverError::Singular => write!(f, "matrix is singular to working precision"),
            SolverError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            SolverError::RankDeficient => write!(f, "least-squares system is rank deficient"),
            SolverError::Infeasible => {
                write!(f, "optimization problem has no strictly feasible point")
            }
            SolverError::MaxIterationsExceeded { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            SolverError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            SolverError::NonFinite(msg) => write!(f, "non-finite value encountered: {msg}"),
        }
    }
}

impl Error for SolverError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SolverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = SolverError::NotSquare { rows: 2, cols: 3 };
        assert_eq!(e.to_string(), "matrix must be square, got 2x3");
        let e = SolverError::ShapeMismatch("2x3 * 2x2".to_string());
        assert!(e.to_string().contains("2x3 * 2x2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(SolverError::Singular);
        assert!(e.to_string().contains("singular"));
    }
}
