//! Twice-differentiable scalar functions of a vector argument.
//!
//! The [`Objective`] trait is the interface between problem formulations
//! (e.g. the log-space form of a geometric program, [`crate::gp`]) and the
//! minimizers ([`crate::newton`], [`crate::barrier`]). Implementations
//! provided here cover everything the REF reproduction needs: affine
//! functions, convex quadratics, and log-sum-exp compositions of affine
//! functions.

use crate::matrix::Matrix;
use crate::vec_ops;

/// A twice-differentiable scalar function `f: R^n -> R`.
///
/// Minimizers call [`value`](Objective::value) during line searches and
/// [`gradient`](Objective::gradient) / [`hessian`](Objective::hessian) at
/// feasible iterates. `value` may return `f64::INFINITY` to signal that a
/// point is outside the function's domain (used by barrier compositions);
/// `gradient` and `hessian` are only invoked at points with finite value.
pub trait Objective {
    /// Dimension `n` of the argument vector.
    fn dim(&self) -> usize;

    /// Function value at `x`, or `f64::INFINITY` outside the domain.
    fn value(&self, x: &[f64]) -> f64;

    /// Gradient at `x` (caller guarantees `value(x)` is finite).
    fn gradient(&self, x: &[f64]) -> Vec<f64>;

    /// Hessian at `x` (caller guarantees `value(x)` is finite).
    fn hessian(&self, x: &[f64]) -> Matrix;
}

/// Affine function `a . x + b`.
///
/// # Examples
///
/// ```
/// use ref_solver::func::{Affine, Objective};
///
/// let f = Affine::new(vec![2.0, -1.0], 0.5);
/// assert_eq!(f.value(&[1.0, 1.0]), 1.5);
/// assert_eq!(f.gradient(&[0.0, 0.0]), vec![2.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Affine {
    a: Vec<f64>,
    b: f64,
}

impl Affine {
    /// Creates the affine function `a . x + b`.
    pub fn new(a: Vec<f64>, b: f64) -> Affine {
        Affine { a, b }
    }

    /// Linear coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.a
    }

    /// Constant offset.
    pub fn offset(&self) -> f64 {
        self.b
    }
}

impl Objective for Affine {
    fn dim(&self) -> usize {
        self.a.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        vec_ops::dot(&self.a, x) + self.b
    }

    fn gradient(&self, _x: &[f64]) -> Vec<f64> {
        self.a.clone()
    }

    fn hessian(&self, _x: &[f64]) -> Matrix {
        Matrix::zeros(self.a.len(), self.a.len())
    }
}

/// Convex quadratic `0.5 x^T Q x + c . x` with symmetric `Q`.
///
/// Primarily used to exercise the minimizers in tests; Newton converges on a
/// quadratic in one step.
#[derive(Debug, Clone, PartialEq)]
pub struct Quadratic {
    q: Matrix,
    c: Vec<f64>,
}

impl Quadratic {
    /// Creates `0.5 x^T Q x + c . x`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not square or its dimension differs from `c.len()`.
    pub fn new(q: Matrix, c: Vec<f64>) -> Quadratic {
        assert!(q.is_square(), "quadratic form requires a square matrix");
        assert_eq!(q.rows(), c.len(), "dimension mismatch");
        Quadratic { q, c }
    }
}

impl Objective for Quadratic {
    fn dim(&self) -> usize {
        self.c.len()
    }

    fn value(&self, x: &[f64]) -> f64 {
        let qx = self.q.matvec(x).expect("dimension checked at construction");
        0.5 * vec_ops::dot(x, &qx) + vec_ops::dot(&self.c, x)
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut qx = self.q.matvec(x).expect("dimension checked at construction");
        vec_ops::axpy(1.0, &self.c, &mut qx);
        qx
    }

    fn hessian(&self, _x: &[f64]) -> Matrix {
        self.q.clone()
    }
}

/// Log-sum-exp of affine functions: `f(x) = log sum_i exp(a_i . x + b_i)`.
///
/// This is the log-space image of a posynomial and the building block of
/// geometric programming ([`crate::gp`]). It is smooth and convex; with a
/// single term it degenerates to an affine function.
///
/// # Examples
///
/// ```
/// use ref_solver::func::{LogSumExpAffine, Objective};
/// use ref_solver::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[1.0], &[-1.0]])?;
/// let f = LogSumExpAffine::new(a, vec![0.0, 0.0]);
/// // log(e^x + e^-x) is minimized at 0 with value log 2.
/// assert!((f.value(&[0.0]) - 2.0_f64.ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogSumExpAffine {
    a: Matrix,
    b: Vec<f64>,
}

impl LogSumExpAffine {
    /// Creates `log sum_i exp(a_i . x + b_i)` where `a_i` is row `i` of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the row count of `a`.
    pub fn new(a: Matrix, b: Vec<f64>) -> LogSumExpAffine {
        assert_eq!(a.rows(), b.len(), "one offset per affine term");
        LogSumExpAffine { a, b }
    }

    /// Number of exponential terms.
    pub fn terms(&self) -> usize {
        self.b.len()
    }

    /// The exponents of each term evaluated at `x`, i.e. `a_i . x + b_i`.
    fn exponents_at(&self, x: &[f64]) -> Vec<f64> {
        let mut e = self.a.matvec(x).expect("dimension checked by caller");
        vec_ops::axpy(1.0, &self.b, &mut e);
        e
    }

    /// Softmax weights of the terms at `x`.
    fn weights_at(&self, x: &[f64]) -> Vec<f64> {
        let e = self.exponents_at(x);
        let lse = vec_ops::log_sum_exp(&e);
        e.iter().map(|v| (v - lse).exp()).collect()
    }
}

impl Objective for LogSumExpAffine {
    fn dim(&self) -> usize {
        self.a.cols()
    }

    fn value(&self, x: &[f64]) -> f64 {
        vec_ops::log_sum_exp(&self.exponents_at(x))
    }

    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let w = self.weights_at(x);
        self.a
            .matvec_transposed(&w)
            .expect("dimension checked at construction")
    }

    fn hessian(&self, x: &[f64]) -> Matrix {
        let w = self.weights_at(x);
        let n = self.dim();
        let mut h = Matrix::zeros(n, n);
        for (i, &wi) in w.iter().enumerate() {
            h.rank_one_update(wi, self.a.row(i));
        }
        let g = self
            .a
            .matvec_transposed(&w)
            .expect("dimension checked at construction");
        h.rank_one_update(-1.0, &g);
        h
    }
}

/// Numerical gradient by central differences, for testing analytic
/// derivatives.
pub fn numerical_gradient(f: &dyn Objective, x: &[f64], h: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f.value(&xp);
        xp[i] = orig - h;
        let fm = f.value(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_basics() {
        let f = Affine::new(vec![1.0, 2.0], 3.0);
        assert_eq!(f.dim(), 2);
        assert_eq!(f.value(&[1.0, 1.0]), 6.0);
        assert_eq!(f.hessian(&[0.0, 0.0]).max_abs(), 0.0);
        assert_eq!(f.coefficients(), &[1.0, 2.0]);
        assert_eq!(f.offset(), 3.0);
    }

    #[test]
    fn quadratic_value_and_gradient() {
        let q = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let f = Quadratic::new(q, vec![-1.0, 0.0]);
        assert_eq!(f.value(&[1.0, 1.0]), 0.5 * (2.0 + 4.0) - 1.0);
        assert_eq!(f.gradient(&[1.0, 1.0]), vec![1.0, 4.0]);
        assert_eq!(f.hessian(&[0.0, 0.0])[(1, 1)], 4.0);
    }

    #[test]
    fn lse_gradient_matches_numerical() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[-0.5, 1.0], &[0.0, -1.0]]).unwrap();
        let f = LogSumExpAffine::new(a, vec![0.1, -0.2, 0.3]);
        let x = [0.4, -0.7];
        let g = f.gradient(&x);
        let gn = numerical_gradient(&f, &x, 1e-6);
        for (a, b) in g.iter().zip(&gn) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn lse_hessian_matches_numerical() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[-0.5, 1.0]]).unwrap();
        let f = LogSumExpAffine::new(a, vec![0.0, 0.5]);
        let x = [0.2, 0.1];
        let h = f.hessian(&x);
        // Differentiate the analytic gradient numerically.
        let eps = 1e-6;
        for j in 0..2 {
            let mut xp = x.to_vec();
            xp[j] += eps;
            let gp = f.gradient(&xp);
            xp[j] -= 2.0 * eps;
            let gm = f.gradient(&xp);
            for i in 0..2 {
                let num = (gp[i] - gm[i]) / (2.0 * eps);
                assert!((h[(i, j)] - num).abs() < 1e-5, "H[{i}{j}]");
            }
        }
    }

    #[test]
    fn lse_single_term_is_affine() {
        let a = Matrix::from_rows(&[&[3.0, -1.0]]).unwrap();
        let f = LogSumExpAffine::new(a, vec![0.7]);
        let aff = Affine::new(vec![3.0, -1.0], 0.7);
        let x = [0.3, 0.9];
        assert!((f.value(&x) - aff.value(&x)).abs() < 1e-12);
        assert!((f.gradient(&x)[0] - 3.0).abs() < 1e-12);
        assert!(f.hessian(&x).max_abs() < 1e-12);
    }

    #[test]
    fn lse_hessian_is_positive_semidefinite() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let f = LogSumExpAffine::new(a, vec![0.0; 3]);
        let h = f.hessian(&[0.3, -0.2]);
        // Check v^T H v >= 0 for a few directions.
        for v in [[1.0, 0.0], [0.0, 1.0], [1.0, -1.0], [0.3, 0.7]] {
            let hv = h.matvec(&v).unwrap();
            assert!(vec_ops::dot(&v, &hv) >= -1e-12);
        }
    }

    #[test]
    fn lse_stable_for_large_inputs() {
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let f = LogSumExpAffine::new(a, vec![0.0, 0.0]);
        let v = f.value(&[800.0]);
        assert!((v - (800.0 + 2.0_f64.ln())).abs() < 1e-9);
        assert!(f.gradient(&[800.0])[0].is_finite());
    }
}
