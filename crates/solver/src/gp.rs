//! Geometric programming in standard form.
//!
//! A geometric program (GP) minimizes a posynomial subject to posynomial
//! inequality constraints `p_i(x) <= 1` over strictly positive variables.
//! With the substitution `x_j = exp(t_j)` every posynomial becomes a
//! log-sum-exp of affine functions and the program becomes convex; it is then
//! solved by the interior-point method in [`crate::barrier`].
//!
//! The REF paper's welfare mechanisms are all expressible as GPs:
//! Cobb-Douglas utilities are monomials, so Nash-welfare maximization,
//! max-min (equal slowdown) and the fairness constraints (SI, EF) are
//! monomial/posynomial constraints. See `ref-core`'s mechanism modules for
//! the formulations.

use crate::barrier::{self, BarrierOptions};
use crate::error::{Result, SolverError};
use crate::func::{Affine, LogSumExpAffine, Objective};
use crate::matrix::Matrix;

/// A monomial `c * prod_j x_j^{a_j}` with positive coefficient `c`.
///
/// Exponents may be any real numbers (negative exponents express ratios).
///
/// # Examples
///
/// ```
/// use ref_solver::gp::Monomial;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 2 * x^0.6 * y^0.4
/// let m = Monomial::new(2.0, vec![0.6, 0.4])?;
/// assert!((m.eval(&[1.0, 1.0]) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Monomial {
    coefficient: f64,
    exponents: Vec<f64>,
}

impl Monomial {
    /// Creates `c * prod_j x_j^{a_j}`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidArgument`] if `coefficient` is not
    /// strictly positive and finite, or any exponent is non-finite.
    pub fn new(coefficient: f64, exponents: Vec<f64>) -> Result<Monomial> {
        if !(coefficient > 0.0 && coefficient.is_finite()) {
            return Err(SolverError::InvalidArgument(format!(
                "monomial coefficient must be positive and finite, got {coefficient}"
            )));
        }
        if exponents.iter().any(|e| !e.is_finite()) {
            return Err(SolverError::InvalidArgument(
                "monomial exponents must be finite".to_string(),
            ));
        }
        Ok(Monomial {
            coefficient,
            exponents,
        })
    }

    /// A monomial equal to the single variable `x_j` among `n` variables.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidArgument`] if `j >= n`.
    pub fn variable(n: usize, j: usize) -> Result<Monomial> {
        if j >= n {
            return Err(SolverError::InvalidArgument(format!(
                "variable index {j} out of range for {n} variables"
            )));
        }
        let mut exponents = vec![0.0; n];
        exponents[j] = 1.0;
        Monomial::new(1.0, exponents)
    }

    /// The positive coefficient `c`.
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }

    /// The per-variable exponents.
    pub fn exponents(&self) -> &[f64] {
        &self.exponents
    }

    /// Evaluates the monomial at strictly positive `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the number of exponents.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.exponents.len(), "dimension mismatch");
        self.coefficient
            * x.iter()
                .zip(&self.exponents)
                .map(|(&xi, &ai)| xi.powf(ai))
                .product::<f64>()
    }

    /// The log-space affine image: `(a, log c)` such that
    /// `log m(e^t) = a . t + log c`.
    fn log_affine(&self) -> (Vec<f64>, f64) {
        (self.exponents.clone(), self.coefficient.ln())
    }

    /// The reciprocal monomial `1 / m`, itself a monomial.
    pub fn reciprocal(&self) -> Monomial {
        Monomial {
            coefficient: 1.0 / self.coefficient,
            exponents: self.exponents.iter().map(|e| -e).collect(),
        }
    }

    /// The product of two monomials.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn product(&self, other: &Monomial) -> Monomial {
        assert_eq!(
            self.exponents.len(),
            other.exponents.len(),
            "dimension mismatch"
        );
        Monomial {
            coefficient: self.coefficient * other.coefficient,
            exponents: self
                .exponents
                .iter()
                .zip(&other.exponents)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

/// A posynomial: a sum of monomials over the same variables.
///
/// # Examples
///
/// ```
/// use ref_solver::gp::{Monomial, Posynomial};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = Posynomial::from_monomials(vec![
///     Monomial::new(1.0, vec![1.0, 0.0])?,
///     Monomial::new(1.0, vec![0.0, 1.0])?,
/// ])?;
/// assert!((p.eval(&[2.0, 3.0]) - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Posynomial {
    terms: Vec<Monomial>,
}

impl Posynomial {
    /// Creates a posynomial from its monomial terms.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidArgument`] if `terms` is empty or the
    /// terms disagree on dimension.
    pub fn from_monomials(terms: Vec<Monomial>) -> Result<Posynomial> {
        if terms.is_empty() {
            return Err(SolverError::InvalidArgument(
                "posynomial needs at least one term".to_string(),
            ));
        }
        let n = terms[0].exponents.len();
        if terms.iter().any(|t| t.exponents.len() != n) {
            return Err(SolverError::InvalidArgument(
                "posynomial terms must share a dimension".to_string(),
            ));
        }
        Ok(Posynomial { terms })
    }

    /// The monomial terms.
    pub fn terms(&self) -> &[Monomial] {
        &self.terms
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.terms[0].exponents.len()
    }

    /// Evaluates the posynomial at strictly positive `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the posynomial's dimension.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(x)).sum()
    }

    /// Log-space image as a [`LogSumExpAffine`].
    fn to_lse(&self) -> LogSumExpAffine {
        let n = self.dim();
        let mut a = Matrix::zeros(self.terms.len(), n);
        let mut b = Vec::with_capacity(self.terms.len());
        for (i, t) in self.terms.iter().enumerate() {
            let (row, off) = t.log_affine();
            for (j, v) in row.iter().enumerate() {
                a[(i, j)] = *v;
            }
            b.push(off);
        }
        LogSumExpAffine::new(a, b)
    }
}

impl From<Monomial> for Posynomial {
    fn from(m: Monomial) -> Posynomial {
        Posynomial { terms: vec![m] }
    }
}

/// A geometric program in standard form.
///
/// ```text
/// minimize    p_0(x)
/// subject to  p_i(x) <= 1,   i = 1..m
///             x > 0
/// ```
///
/// # Examples
///
/// Maximize `x y` subject to `x + y <= 2` (optimum `x = y = 1`): maximizing
/// a monomial is minimizing its reciprocal.
///
/// ```
/// use ref_solver::gp::{GeometricProgram, Monomial, Posynomial};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let xy = Monomial::new(1.0, vec![1.0, 1.0])?;
/// let mut gp = GeometricProgram::minimize(2, xy.reciprocal().into())?;
/// gp.add_constraint(Posynomial::from_monomials(vec![
///     Monomial::new(0.5, vec![1.0, 0.0])?,
///     Monomial::new(0.5, vec![0.0, 1.0])?,
/// ])?)?;
/// let sol = gp.solve(&[0.5, 0.5])?;
/// assert!((sol.x[0] - 1.0).abs() < 1e-3);
/// assert!((sol.x[1] - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeometricProgram {
    n: usize,
    objective: Posynomial,
    constraints: Vec<Posynomial>,
    options: BarrierOptions,
}

/// Solution of a geometric program.
#[derive(Debug, Clone, PartialEq)]
pub struct GpSolution {
    /// Optimal (strictly positive) variable values.
    pub x: Vec<f64>,
    /// Objective posynomial value at the optimum.
    pub objective_value: f64,
    /// Outer interior-point iterations used.
    pub outer_iterations: usize,
    /// Barrier path parameter at convergence; feed it back through
    /// [`GpWarmStart`] to warm-start a nearby re-solve.
    pub final_t: f64,
}

/// Warm-start hint for [`GeometricProgram::solve_warm`]: the optimum of a
/// previous, nearby instance in the *original* (positive) variable space
/// plus the barrier path parameter it converged at.
#[derive(Debug, Clone, PartialEq)]
pub struct GpWarmStart {
    /// Previous optimum (strictly positive, original space).
    pub x: Vec<f64>,
    /// `final_t` reported by the previous solve.
    pub t: f64,
}

impl GpWarmStart {
    /// Extracts the warm-start hint from a solution.
    pub fn from_solution(sol: &GpSolution) -> GpWarmStart {
        GpWarmStart {
            x: sol.x.clone(),
            t: sol.final_t,
        }
    }
}

impl GeometricProgram {
    /// Creates a GP minimizing `objective` over `n` positive variables.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if the objective dimension is
    /// not `n`.
    pub fn minimize(n: usize, objective: Posynomial) -> Result<GeometricProgram> {
        if objective.dim() != n {
            return Err(SolverError::ShapeMismatch(format!(
                "objective has dimension {}, expected {n}",
                objective.dim()
            )));
        }
        Ok(GeometricProgram {
            n,
            objective,
            constraints: Vec::new(),
            options: BarrierOptions::default(),
        })
    }

    /// Adds the constraint `p(x) <= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if the constraint dimension
    /// differs from the program's.
    pub fn add_constraint(&mut self, p: Posynomial) -> Result<&mut GeometricProgram> {
        if p.dim() != self.n {
            return Err(SolverError::ShapeMismatch(format!(
                "constraint has dimension {}, expected {}",
                p.dim(),
                self.n
            )));
        }
        self.constraints.push(p);
        Ok(self)
    }

    /// Adds the monomial equality `m(x) = 1`, encoded as the relaxed band
    /// `1 - eps <= m(x) <= 1 + eps` with `eps = 1e-6`.
    ///
    /// An exact equality has no strict interior, which a log-barrier method
    /// cannot center in; the relaxation perturbs the optimum by at most
    /// `O(eps)`, far below the solver's duality-gap tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] on dimension mismatch.
    pub fn add_monomial_equality(&mut self, m: Monomial) -> Result<&mut GeometricProgram> {
        self.add_monomial_equality_with_tolerance(m, 1e-6)
    }

    /// As [`add_monomial_equality`](GeometricProgram::add_monomial_equality)
    /// with an explicit relaxation half-width `eps`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::InvalidArgument`] unless `0 < eps < 1`, and
    /// [`SolverError::ShapeMismatch`] on dimension mismatch.
    pub fn add_monomial_equality_with_tolerance(
        &mut self,
        m: Monomial,
        eps: f64,
    ) -> Result<&mut GeometricProgram> {
        if !(eps > 0.0 && eps < 1.0) {
            return Err(SolverError::InvalidArgument(format!(
                "equality relaxation must be in (0, 1), got {eps}"
            )));
        }
        let upper = Monomial {
            coefficient: m.coefficient / (1.0 + eps),
            exponents: m.exponents.clone(),
        };
        let mut lower = m.reciprocal();
        lower.coefficient *= 1.0 - eps;
        self.add_constraint(upper.into())?;
        self.add_constraint(lower.into())?;
        Ok(self)
    }

    /// Overrides the interior-point options.
    pub fn set_options(&mut self, options: BarrierOptions) -> &mut GeometricProgram {
        self.options = options;
        self
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.n
    }

    /// Number of posynomial constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Solves the program starting from the strictly positive point `x0`.
    ///
    /// `x0` need not be feasible (a phase-I solve runs automatically) but
    /// every entry must be positive because the solve happens in log space.
    ///
    /// # Errors
    ///
    /// - [`SolverError::InvalidArgument`] if `x0` has the wrong length or a
    ///   non-positive entry.
    /// - [`SolverError::Infeasible`] if no strictly feasible point exists.
    /// - Errors propagated from the interior-point method.
    pub fn solve(&self, x0: &[f64]) -> Result<GpSolution> {
        self.solve_warm(x0, None)
    }

    /// As [`solve`](GeometricProgram::solve), seeded from a previous
    /// solution of a nearby instance when `warm` is given.
    ///
    /// A usable hint must match the problem's variable count, be strictly
    /// positive and finite, and carry a finite path parameter at or above
    /// the configured `t0` — anything else (a shape change, a poisoned
    /// cache entry) makes the hint *ignored*, not an error: the solve
    /// falls back to the cold path from `x0`. The warm path also falls
    /// back to cold if it fails for any reason (e.g. the previous optimum
    /// is infeasible for the new instance in a way phase I cannot fix from
    /// there), so `solve_warm` never errors where `solve` would succeed.
    ///
    /// # Errors
    ///
    /// As [`solve`](GeometricProgram::solve).
    pub fn solve_warm(&self, x0: &[f64], warm: Option<&GpWarmStart>) -> Result<GpSolution> {
        if x0.len() != self.n {
            return Err(SolverError::InvalidArgument(format!(
                "start point has length {}, expected {}",
                x0.len(),
                self.n
            )));
        }
        if x0.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
            return Err(SolverError::InvalidArgument(
                "start point must be strictly positive".to_string(),
            ));
        }
        // Log-space objective. A one-term posynomial maps to an affine
        // objective, which keeps Newton exact for monomial objectives.
        let obj_lse = self.objective.to_lse();
        let obj_affine;
        let objective: &dyn Objective = if self.objective.terms().len() == 1 {
            let (a, b) = self.objective.terms()[0].log_affine();
            obj_affine = Affine::new(a, b);
            &obj_affine
        } else {
            &obj_lse
        };
        let lses: Vec<LogSumExpAffine> = self.constraints.iter().map(|c| c.to_lse()).collect();
        let refs: Vec<&dyn Objective> = lses.iter().map(|c| c as &dyn Objective).collect();
        if let Some(w) = warm {
            if self.warm_start_usable(w) {
                let t_warm: Vec<f64> = w.x.iter().map(|v| v.ln()).collect();
                let t_start = (w.t / self.options.mu).max(self.options.t0);
                if let Ok(r) =
                    barrier::minimize_warm(objective, &refs, &t_warm, &self.options, Some(t_start))
                {
                    return Ok(self.finish(r));
                }
                // Fall through to the cold start below.
            }
        }
        let t0: Vec<f64> = x0.iter().map(|v| v.ln()).collect();
        let r = barrier::minimize(objective, &refs, &t0, &self.options)?;
        Ok(self.finish(r))
    }

    /// Whether a warm-start hint is safe to seed the barrier method with.
    fn warm_start_usable(&self, w: &GpWarmStart) -> bool {
        w.x.len() == self.n
            && w.x.iter().all(|&v| v > 0.0 && v.is_finite())
            && w.t.is_finite()
            && w.t >= self.options.t0
    }

    /// Maps a barrier result back to the original positive variables.
    fn finish(&self, r: barrier::BarrierResult) -> GpSolution {
        let x: Vec<f64> = r.x.iter().map(|t| t.exp()).collect();
        let objective_value = self.objective.eval(&x);
        GpSolution {
            x,
            objective_value,
            outer_iterations: r.outer_iterations,
            final_t: r.final_t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_validation() {
        assert!(Monomial::new(0.0, vec![1.0]).is_err());
        assert!(Monomial::new(-1.0, vec![1.0]).is_err());
        assert!(Monomial::new(1.0, vec![f64::NAN]).is_err());
        assert!(Monomial::new(2.5, vec![0.3, -0.7]).is_ok());
        assert!(Monomial::variable(2, 2).is_err());
    }

    #[test]
    fn monomial_eval_and_algebra() {
        let m = Monomial::new(2.0, vec![0.5, -1.0]).unwrap();
        assert!((m.eval(&[4.0, 2.0]) - 2.0).abs() < 1e-12);
        let r = m.reciprocal();
        assert!((m.eval(&[4.0, 2.0]) * r.eval(&[4.0, 2.0]) - 1.0).abs() < 1e-12);
        let p = m.product(&r);
        assert!((p.eval(&[3.0, 7.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn posynomial_validation() {
        assert!(Posynomial::from_monomials(vec![]).is_err());
        let mismatch = Posynomial::from_monomials(vec![
            Monomial::new(1.0, vec![1.0]).unwrap(),
            Monomial::new(1.0, vec![1.0, 2.0]).unwrap(),
        ]);
        assert!(mismatch.is_err());
    }

    #[test]
    fn maximize_product_under_budget() {
        // max x y s.t. x + y <= 2 -> x = y = 1.
        let xy = Monomial::new(1.0, vec![1.0, 1.0]).unwrap();
        let mut gp = GeometricProgram::minimize(2, xy.reciprocal().into()).unwrap();
        gp.add_constraint(
            Posynomial::from_monomials(vec![
                Monomial::new(0.5, vec![1.0, 0.0]).unwrap(),
                Monomial::new(0.5, vec![0.0, 1.0]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        let sol = gp.solve(&[0.2, 1.5]).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-3, "{:?}", sol.x);
        assert!((sol.x[1] - 1.0).abs() < 1e-3, "{:?}", sol.x);
        assert!((sol.objective_value - 1.0).abs() < 1e-3);
    }

    #[test]
    fn weighted_nash_bargaining_matches_closed_form() {
        // max x^0.6 y^0.4 * u^0.2 v^0.8 with x + u <= 24, y + v <= 12
        // (the paper's running example). Closed form: x = 18, y = 4,
        // u = 6, v = 8. Variables ordered (x, y, u, v).
        let welfare = Monomial::new(1.0, vec![0.6, 0.4, 0.2, 0.8]).unwrap();
        let mut gp = GeometricProgram::minimize(4, welfare.reciprocal().into()).unwrap();
        gp.add_constraint(
            Posynomial::from_monomials(vec![
                Monomial::new(1.0 / 24.0, vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
                Monomial::new(1.0 / 24.0, vec![0.0, 0.0, 1.0, 0.0]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        gp.add_constraint(
            Posynomial::from_monomials(vec![
                Monomial::new(1.0 / 12.0, vec![0.0, 1.0, 0.0, 0.0]).unwrap(),
                Monomial::new(1.0 / 12.0, vec![0.0, 0.0, 0.0, 1.0]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        let sol = gp.solve(&[6.0, 3.0, 6.0, 3.0]).unwrap();
        assert!((sol.x[0] - 18.0).abs() < 0.02, "{:?}", sol.x);
        assert!((sol.x[1] - 4.0).abs() < 0.01, "{:?}", sol.x);
        assert!((sol.x[2] - 6.0).abs() < 0.02, "{:?}", sol.x);
        assert!((sol.x[3] - 8.0).abs() < 0.01, "{:?}", sol.x);
    }

    #[test]
    fn monomial_equality_pins_value() {
        // minimize x subject to x y = 4, y <= 2 -> y = 2, x = 2.
        let x = Monomial::variable(2, 0).unwrap();
        let mut gp = GeometricProgram::minimize(2, x.into()).unwrap();
        gp.add_monomial_equality(Monomial::new(0.25, vec![1.0, 1.0]).unwrap())
            .unwrap();
        gp.add_constraint(Monomial::new(0.5, vec![0.0, 1.0]).unwrap().into())
            .unwrap();
        let sol = gp.solve(&[4.0, 1.0]).unwrap();
        assert!((sol.x[1] - 2.0).abs() < 1e-2, "{:?}", sol.x);
        assert!((sol.x[0] - 2.0).abs() < 1e-2, "{:?}", sol.x);
    }

    #[test]
    fn warm_solve_agrees_with_cold_and_converges_faster() {
        let xy = Monomial::new(1.0, vec![1.0, 1.0]).unwrap();
        let mut gp = GeometricProgram::minimize(2, xy.reciprocal().into()).unwrap();
        gp.add_constraint(
            Posynomial::from_monomials(vec![
                Monomial::new(0.5, vec![1.0, 0.0]).unwrap(),
                Monomial::new(0.5, vec![0.0, 1.0]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        let cold = gp.solve(&[0.2, 1.5]).unwrap();
        let warm = GpWarmStart::from_solution(&cold);
        let rewarmed = gp.solve_warm(&[0.2, 1.5], Some(&warm)).unwrap();
        assert!(rewarmed.outer_iterations < cold.outer_iterations);
        for (w, c) in rewarmed.x.iter().zip(&cold.x) {
            assert!((w - c).abs() < 1e-3, "{w} vs {c}");
        }
    }

    #[test]
    fn unusable_warm_hints_fall_back_to_cold_path() {
        let xy = Monomial::new(1.0, vec![1.0, 1.0]).unwrap();
        let mut gp = GeometricProgram::minimize(2, xy.reciprocal().into()).unwrap();
        gp.add_constraint(
            Posynomial::from_monomials(vec![
                Monomial::new(0.5, vec![1.0, 0.0]).unwrap(),
                Monomial::new(0.5, vec![0.0, 1.0]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        let cold = gp.solve(&[0.2, 1.5]).unwrap();
        let bad_hints = [
            GpWarmStart {
                x: vec![1.0],
                t: 1e7,
            }, // wrong shape
            GpWarmStart {
                x: vec![1.0, f64::NAN],
                t: 1e7,
            }, // non-finite point
            GpWarmStart {
                x: vec![1.0, -1.0],
                t: 1e7,
            }, // non-positive point
            GpWarmStart {
                x: vec![1.0, 1.0],
                t: f64::NAN,
            }, // non-finite t
            GpWarmStart {
                x: vec![1.0, 1.0],
                t: 0.5,
            }, // t below t0
        ];
        for hint in &bad_hints {
            let sol = gp.solve_warm(&[0.2, 1.5], Some(hint)).unwrap();
            // The hint is rejected up front, so the solve is the cold solve.
            assert_eq!(sol.x, cold.x, "hint {hint:?} was not ignored");
            assert_eq!(sol.outer_iterations, cold.outer_iterations);
        }
    }

    #[test]
    fn solve_delegates_to_cold_warm_path() {
        // `solve` and `solve_warm(.., None)` must be the same computation.
        let x = Monomial::variable(1, 0).unwrap();
        let mut gp = GeometricProgram::minimize(1, x.into()).unwrap();
        gp.add_constraint(Monomial::new(0.5, vec![-1.0]).unwrap().into())
            .unwrap();
        let a = gp.solve(&[1.0]).unwrap();
        let b = gp.solve_warm(&[1.0], None).unwrap();
        assert_eq!(a.x, b.x);
        assert_eq!(a.final_t, b.final_t);
    }

    #[test]
    fn rejects_bad_start_points() {
        let gp =
            GeometricProgram::minimize(1, Monomial::new(1.0, vec![1.0]).unwrap().into()).unwrap();
        assert!(gp.solve(&[]).is_err());
        assert!(gp.solve(&[-1.0]).is_err());
        assert!(gp.solve(&[0.0]).is_err());
    }

    #[test]
    fn infeasible_gp_detected() {
        // x <= 1/2 and 1/x <= 1/2 (i.e. x >= 2) conflict.
        let x = Monomial::variable(1, 0).unwrap();
        let mut gp = GeometricProgram::minimize(1, x.clone().into()).unwrap();
        gp.add_constraint(Monomial::new(2.0, vec![1.0]).unwrap().into())
            .unwrap();
        gp.add_constraint(Monomial::new(2.0, vec![-1.0]).unwrap().into())
            .unwrap();
        assert!(matches!(gp.solve(&[1.0]), Err(SolverError::Infeasible)));
    }

    #[test]
    fn dimension_checks() {
        let bad = GeometricProgram::minimize(2, Monomial::new(1.0, vec![1.0]).unwrap().into());
        assert!(bad.is_err());
        let mut gp =
            GeometricProgram::minimize(1, Monomial::new(1.0, vec![1.0]).unwrap().into()).unwrap();
        assert!(gp
            .add_constraint(Monomial::new(1.0, vec![1.0, 1.0]).unwrap().into())
            .is_err());
    }
}
