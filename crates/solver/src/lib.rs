//! # ref-solver
//!
//! Dense linear algebra and convex optimization for the REF (Resource
//! Elasticity Fairness) reproduction — the from-scratch stand-in for the
//! Matlab + CVX toolchain used in the paper's evaluation.
//!
//! The crate provides three layers:
//!
//! 1. **Linear algebra** — [`Matrix`], Householder QR ([`Qr`]), Cholesky
//!    factorization ([`Cholesky`]), LU with partial pivoting ([`lu::Lu`])
//!    and ordinary least squares
//!    ([`lstsq::fit`]), which `ref-core` uses to fit log-linearized
//!    Cobb-Douglas utilities (Eq. 16 of the paper).
//! 2. **Smooth convex minimization** — the [`func::Objective`] trait,
//!    damped Newton ([`newton::minimize`]) and a log-barrier interior-point
//!    method ([`barrier::minimize`]).
//! 3. **Geometric programming** — [`gp::GeometricProgram`] in standard form
//!    (posynomial objective and constraints over positive variables), the
//!    formulation the paper uses for Nash-welfare and equal-slowdown
//!    allocation (§4.5, footnote 2).
//!
//! # Examples
//!
//! Fit a line with least squares:
//!
//! ```
//! use ref_solver::{lstsq, Matrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = lstsq::design_with_intercept(&[vec![0.0], vec![1.0], vec![2.0]])?;
//! let fit = lstsq::fit(&x, &[1.0, 3.0, 5.0])?;
//! assert!((fit.coefficients()[1] - 2.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```
//!
//! Solve a geometric program (maximize `x y` under a budget):
//!
//! ```
//! use ref_solver::gp::{GeometricProgram, Monomial, Posynomial};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let xy = Monomial::new(1.0, vec![1.0, 1.0])?;
//! let mut gp = GeometricProgram::minimize(2, xy.reciprocal().into())?;
//! gp.add_constraint(Posynomial::from_monomials(vec![
//!     Monomial::new(0.5, vec![1.0, 0.0])?,
//!     Monomial::new(0.5, vec![0.0, 1.0])?,
//! ])?)?;
//! let sol = gp.solve(&[0.5, 0.5])?;
//! assert!((sol.x[0] - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Numeric kernels index several arrays with one loop variable; iterator
// rewrites obscure the linear-algebra correspondence.
#![allow(clippy::needless_range_loop)]
// Bracket checks like `!(lo < hi)` are deliberate: they also reject NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod barrier;
pub mod cholesky;
pub mod error;
pub mod func;
pub mod gp;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod newton;
pub mod qr;
pub mod roots;
pub mod tol;
pub mod update;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use error::{Result, SolverError};
pub use matrix::Matrix;
pub use qr::Qr;
pub use update::{UpdatableFit, UpdatableLstsq};
