//! Ordinary least-squares regression with fit diagnostics.
//!
//! This is the statistical layer the REF paper runs in Matlab: fit a linear
//! model `y ~ X b` by least squares and report the coefficient of
//! determination (R-squared). [`crate::qr`] provides the numerics.

use crate::error::{Result, SolverError};
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::tol;
use crate::vec_ops;

/// Result of an ordinary least-squares fit.
///
/// # Examples
///
/// ```
/// use ref_solver::{lstsq::fit, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Perfect line y = 1 + 2 t.
/// let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let f = fit(&x, &[1.0, 3.0, 5.0])?;
/// assert!((f.coefficients()[1] - 2.0).abs() < 1e-12);
/// assert!(f.r_squared() > 0.999_999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Fit {
    coefficients: Vec<f64>,
    residuals: Vec<f64>,
    r_squared: f64,
    residual_sum_of_squares: f64,
    total_sum_of_squares: f64,
}

impl Fit {
    /// Fitted coefficients, one per design-matrix column.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Residuals `y - X b`, one per observation.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Coefficient of determination.
    ///
    /// Defined as `1 - SS_res / SS_tot`. When the response has zero variance
    /// (`SS_tot == 0`) the convention here is `1.0` for a zero-residual fit
    /// and `0.0` otherwise — matching the paper's observation that workloads
    /// like `radiosity` with negligible variance have "no trend for
    /// Cobb-Douglas to capture".
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Residual sum of squares `||y - X b||^2`.
    pub fn residual_sum_of_squares(&self) -> f64 {
        self.residual_sum_of_squares
    }

    /// Total sum of squares `sum (y_i - mean(y))^2`.
    pub fn total_sum_of_squares(&self) -> f64 {
        self.total_sum_of_squares
    }

    /// Predicts the response for a new row of covariates.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the number of coefficients.
    pub fn predict(&self, row: &[f64]) -> f64 {
        vec_ops::dot(&self.coefficients, row)
    }
}

/// Fits `y ~ X b` by ordinary least squares.
///
/// The solve applies the packed Householder reflections to `y` directly
/// (`Q^T y` then back-substitution) — the explicit `Q` factor is never
/// reconstructed.
///
/// # Errors
///
/// Returns [`SolverError::ShapeMismatch`] if `y.len()` differs from the row
/// count of `x`, and propagates [`SolverError::RankDeficient`] for collinear
/// designs.
pub fn fit(x: &Matrix, y: &[f64]) -> Result<Fit> {
    if y.len() != x.rows() {
        return Err(SolverError::ShapeMismatch(format!(
            "{} observations but design matrix has {} rows",
            y.len(),
            x.rows()
        )));
    }
    if !vec_ops::all_finite(y) {
        return Err(SolverError::NonFinite("least-squares response".to_string()));
    }
    let coefficients = Qr::new(x)?.solve_least_squares(y)?;
    let fitted = x.matvec(&coefficients)?;
    let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(yi, fi)| yi - fi).collect();
    let ss_res = vec_ops::dot(&residuals, &residuals);
    let mean_y = vec_ops::mean(y);
    let ss_tot: f64 = y.iter().map(|yi| (yi - mean_y).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 {
        // Clamp tiny negative round-off; R^2 can legitimately be negative
        // only for models without an intercept that fit worse than the mean,
        // which we still report faithfully.
        1.0 - ss_res / ss_tot
    } else if ss_res <= tol::zero_variance_rss(y.len()) {
        1.0
    } else {
        0.0
    };
    Ok(Fit {
        coefficients,
        residuals,
        r_squared,
        residual_sum_of_squares: ss_res,
        total_sum_of_squares: ss_tot,
    })
}

/// Builds a design matrix with a leading intercept column from raw covariate
/// rows.
///
/// # Errors
///
/// Returns [`SolverError::InvalidArgument`] for empty input and
/// [`SolverError::ShapeMismatch`] for ragged rows.
///
/// # Examples
///
/// ```
/// use ref_solver::lstsq::design_with_intercept;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = design_with_intercept(&[vec![2.0], vec![3.0]])?;
/// assert_eq!(x.row(0), &[1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn design_with_intercept(rows: &[Vec<f64>]) -> Result<Matrix> {
    if rows.is_empty() {
        return Err(SolverError::InvalidArgument(
            "design matrix needs at least one observation".to_string(),
        ));
    }
    let k = rows[0].len();
    let mut out = Matrix::zeros(rows.len(), k + 1);
    for (i, row) in rows.iter().enumerate() {
        if row.len() != k {
            return Err(SolverError::ShapeMismatch(format!(
                "observation {i} has {} covariates, expected {k}",
                row.len()
            )));
        }
        out[(i, 0)] = 1.0;
        for (j, &v) in row.iter().enumerate() {
            out[(i, j + 1)] = v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn perfect_fit_has_unit_r_squared() {
        let x = design_with_intercept(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y: Vec<f64> = (0..4).map(|t| 2.0 + 3.0 * t as f64).collect();
        let f = fit(&x, &y).unwrap();
        assert_close(f.coefficients()[0], 2.0, 1e-10);
        assert_close(f.coefficients()[1], 3.0, 1e-10);
        assert_close(f.r_squared(), 1.0, 1e-12);
        assert!(f.residuals().iter().all(|r| r.abs() < 1e-10));
    }

    #[test]
    fn noisy_fit_r_squared_between_zero_and_one() {
        let x = design_with_intercept(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]])
            .unwrap();
        let y = [0.1, 1.2, 1.8, 3.3, 3.9];
        let f = fit(&x, &y).unwrap();
        assert!(f.r_squared() > 0.9 && f.r_squared() < 1.0);
        assert!(f.residual_sum_of_squares() > 0.0);
        assert!(f.total_sum_of_squares() > f.residual_sum_of_squares());
    }

    #[test]
    fn constant_response_conventions() {
        let x = design_with_intercept(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        // Zero variance, perfectly fit by the intercept.
        let f = fit(&x, &[5.0, 5.0, 5.0]).unwrap();
        assert_close(f.r_squared(), 1.0, 1e-12);
    }

    #[test]
    fn predict_uses_coefficients() {
        let x = design_with_intercept(&[vec![0.0], vec![2.0]]).unwrap();
        let f = fit(&x, &[1.0, 5.0]).unwrap();
        assert_close(f.predict(&[1.0, 4.0]), 9.0, 1e-10);
    }

    #[test]
    fn shape_mismatch_detected() {
        let x = Matrix::zeros(3, 2);
        assert!(fit(&x, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn collinear_design_reports_rank_deficiency() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(matches!(
            fit(&x, &[1.0, 2.0, 3.0]),
            Err(SolverError::RankDeficient)
        ));
    }

    #[test]
    fn design_with_intercept_validates() {
        assert!(design_with_intercept(&[]).is_err());
        assert!(design_with_intercept(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn rejects_nan_response() {
        let x = design_with_intercept(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            fit(&x, &[1.0, f64::NAN]),
            Err(SolverError::NonFinite(_))
        ));
    }

    #[test]
    fn multivariate_fit_recovers_plane() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i % 5) as f64, (i / 5) as f64 * 2.0 + (i % 3) as f64])
            .collect();
        let x = design_with_intercept(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 1.5 - 0.5 * r[0] + 2.0 * r[1]).collect();
        let f = fit(&x, &y).unwrap();
        assert_close(f.coefficients()[0], 1.5, 1e-9);
        assert_close(f.coefficients()[1], -0.5, 1e-9);
        assert_close(f.coefficients()[2], 2.0, 1e-9);
    }
}
