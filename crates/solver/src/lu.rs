//! LU factorization with partial pivoting.
//!
//! Complements [`crate::qr`] for square systems: `P A = L U` supports
//! solves, determinants and inverses. The interior-point stack uses
//! Cholesky for its (symmetric) Newton systems; LU is the general-purpose
//! fallback and powers [`Matrix`] inversion in downstream analyses.

use crate::error::{Result, SolverError};
use crate::matrix::Matrix;

/// Packed LU factorization `P A = L U` of a square matrix.
///
/// # Examples
///
/// ```
/// use ref_solver::{lu::Lu, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]])?;
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&[4.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined factors: `U` on and above the diagonal, `L` (unit diagonal
    /// implicit) below.
    packed: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Relative pivot threshold below which the matrix counts as singular.
const PIVOT_TOL: f64 = 1e-13;

impl Lu {
    /// Factors the square matrix `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::NotSquare`] for rectangular input,
    /// [`SolverError::NonFinite`] for non-finite entries, and
    /// [`SolverError::Singular`] if a pivot vanishes.
    pub fn new(a: &Matrix) -> Result<Lu> {
        if !a.is_square() {
            return Err(SolverError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        if !a.is_finite() {
            return Err(SolverError::NonFinite("LU input matrix".to_string()));
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(1.0);
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at or below row k.
            let mut pivot_row = k;
            for i in k + 1..n {
                if m[(i, k)].abs() > m[(pivot_row, k)].abs() {
                    pivot_row = i;
                }
            }
            if m[(pivot_row, k)].abs() <= PIVOT_TOL * scale {
                return Err(SolverError::Singular);
            }
            if pivot_row != k {
                m.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                sign = -sign;
            }
            let pivot = m[(k, k)];
            for i in k + 1..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                for j in k + 1..n {
                    let mkj = m[(k, j)];
                    m[(i, j)] -= factor * mkj;
                }
            }
        }
        Ok(Lu {
            packed: m,
            perm,
            sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `b.len()` differs from the
    /// dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(SolverError::ShapeMismatch(format!(
                "rhs length {} but matrix dimension {n}",
                b.len()
            )));
        }
        // Apply permutation, then forward- and back-substitute.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.packed[(i, k)] * y[k];
            }
            y[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in i + 1..n {
                s -= self.packed[(i, k)] * y[k];
            }
            y[i] = s / self.packed[(i, i)];
        }
        Ok(y)
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        self.sign
            * (0..self.dim())
                .map(|i| self.packed[(i, i)])
                .product::<f64>()
    }

    /// Inverse of `A`, column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a successfully
    /// factored matrix).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Solves the square system `A x = b` via LU with partial pivoting.
///
/// # Errors
///
/// As [`Lu::new`] and [`Lu::solve`].
///
/// # Examples
///
/// ```
/// use ref_solver::{lu, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = lu::solve(&a, &[5.0, 10.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn solves_with_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[3.0, 0.0, 1.0], &[1.0, 1.0, 1.0]]).unwrap();
        let x = solve(&a, &[8.0, 7.0, 6.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (got, want) in ax.iter().zip(&[8.0, 7.0, 6.0]) {
            assert_close(*got, *want, 1e-10);
        }
    }

    #[test]
    fn determinant_with_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert_close(Lu::new(&a).unwrap().det(), -1.0, 1e-12);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert_close(Lu::new(&b).unwrap().det(), 6.0, 1e-12);
        let c = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_close(Lu::new(&c).unwrap().det(), -2.0, 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let id = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(id[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-10);
            }
        }
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(SolverError::Singular)));
    }

    #[test]
    fn rejects_rectangular_and_non_finite() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(SolverError::NotSquare { .. })
        ));
        let nan = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, f64::NAN]]).unwrap();
        assert!(matches!(Lu::new(&nan), Err(SolverError::NonFinite(_))));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn agrees_with_qr_on_random_system() {
        let a =
            Matrix::from_rows(&[&[3.0, -1.0, 2.0], &[1.0, 4.0, -2.0], &[-2.0, 1.5, 5.0]]).unwrap();
        let b = [1.0, -2.0, 3.5];
        let x_lu = solve(&a, &b).unwrap();
        let x_qr = crate::qr::solve(&a, &b).unwrap();
        for (l, q) in x_lu.iter().zip(&x_qr) {
            assert_close(*l, *q, 1e-10);
        }
    }
}
