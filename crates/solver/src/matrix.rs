//! Dense, row-major, `f64` matrices.
//!
//! [`Matrix`] is the workhorse type for the factorizations ([`crate::qr`],
//! [`crate::cholesky`]) and the optimization stack. It is deliberately small:
//! just enough structure for regression and interior-point solvers, written
//! for clarity over raw speed.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use crate::error::{Result, SolverError};

/// A dense matrix of `f64` values with row-major storage.
///
/// # Examples
///
/// ```
/// use ref_solver::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
    /// assert_eq!(m[(1, 1)], 2.0);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if the rows have unequal
    /// lengths, and [`SolverError::InvalidArgument`] if `rows` is empty or the
    /// first row is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Result<Matrix> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(SolverError::InvalidArgument(
                "matrix must have at least one row and one column".to_string(),
            ));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(SolverError::ShapeMismatch(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `data.len() != rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
    /// assert_eq!(m[(0, 1)], 2.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(SolverError::ShapeMismatch(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// let d = Matrix::diagonal(&[1.0, 2.0]);
    /// assert_eq!(d[(1, 1)], 2.0);
    /// assert_eq!(d[(0, 1)], 0.0);
    /// ```
    pub fn diagonal(diag: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// A view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A view of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose of this matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0]])?;
    /// let t = m.transpose();
    /// assert_eq!((t.rows(), t.cols()), (3, 1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if the inner dimensions differ.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0]])?;
    /// let b = Matrix::from_rows(&[&[3.0], &[4.0]])?;
    /// let c = a.matmul(&b)?;
    /// assert_eq!(c[(0, 0)], 11.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(SolverError::ShapeMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        // Blocked over the inner dimension: each panel of `other` rows is
        // streamed against every output row while it is cache-hot. For every
        // output entry the k-contributions still accumulate in ascending
        // order (panels ascend, k ascends within a panel), so the result is
        // bit-identical to the naive triple loop.
        const KC: usize = 64;
        let n = other.cols;
        let mut out = Matrix::zeros(self.rows, n);
        for k0 in (0..self.cols).step_by(KC) {
            let k1 = (k0 + KC).min(self.cols);
            for i in 0..self.rows {
                let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                let crow = &mut out.data[i * n..(i + 1) * n];
                for k in k0..k1 {
                    let aik = arow[k];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &other.data[k * n..(k + 1) * n];
                    for (c, &b) in crow.iter_mut().zip(brow) {
                        *c += aik * b;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `x.len() != self.cols()`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(a.matvec(&[1.0, 1.0])?, vec![3.0, 7.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SolverError::ShapeMismatch(format!(
                "{}x{} * vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(SolverError::ShapeMismatch(format!(
                "({}x{})^T * vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * xi;
            }
        }
        Ok(out)
    }

    /// In-place scale by a constant.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// Adds `s * x x^T` to this square matrix (rank-one update).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x.len()` differs from the
    /// dimension.
    pub fn rank_one_update(&mut self, s: f64, x: &[f64]) {
        assert!(self.is_square(), "rank-one update requires a square matrix");
        assert_eq!(x.len(), self.rows, "vector length must match dimension");
        for (i, &xi) in x.iter().enumerate() {
            // `s * x[i] * x[j]` associates left, so hoisting `s * x[i]` out
            // of the inner loop reproduces the same rounding.
            let sxi = s * xi;
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (r, &xj) in row.iter_mut().zip(x) {
                *r += sxi * xj;
            }
        }
    }

    /// In-place elementwise `self += s * other`.
    ///
    /// Equivalent to `self.add_matrix(&other.scaled(s))` without the two
    /// temporaries — the Hessian accumulation in [`crate::barrier`] calls
    /// this once per constraint per Newton step, where the allocation churn
    /// dominated.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if the shapes differ.
    pub fn axpy_matrix(&mut self, s: f64, other: &Matrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SolverError::ShapeMismatch(format!(
                "{}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
        Ok(())
    }

    /// Frobenius norm, the square root of the sum of squared entries.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ref_solver::Matrix;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let m = Matrix::from_rows(&[&[3.0, 4.0]])?;
    /// assert_eq!(m.frobenius_norm(), 5.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry, or `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Whether every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if the shapes differ.
    pub fn add_matrix(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if the shapes differ.
    pub fn sub_matrix(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(&self, other: &Matrix, f: F) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SolverError::ShapeMismatch(format!(
                "{}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// The symmetric part `(A + A^T) / 2`, useful to remove round-off
    /// asymmetry from numerically computed Hessians.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrized(&self) -> Matrix {
        assert!(self.is_square(), "symmetrized requires a square matrix");
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            0.5 * (self[(i, j)] + self[(j, i)])
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Matrix::add_matrix`] for a fallible
    /// version.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_matrix(rhs)
            .expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Matrix::sub_matrix`] for a fallible
    /// version.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_matrix(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!((z.rows(), z.cols()), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&sample()).unwrap(), sample());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, SolverError::ShapeMismatch(_)));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        let empty: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn blocked_matmul_matches_naive_across_panel_boundary() {
        // Inner dimension larger than one k-panel exercises the panel loop.
        let k = 150;
        let a = Matrix::from_fn(3, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(k, 4, |i, j| ((i * 7 + j * 29) % 11) as f64 - 5.0);
        let c = a.matmul(&b).unwrap();
        let mut naive = Matrix::zeros(3, 4);
        for i in 0..3 {
            for kk in 0..k {
                let aik = a[(i, kk)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..4 {
                    naive[(i, j)] += aik * b[(kk, j)];
                }
            }
        }
        assert_eq!(c, naive);
    }

    #[test]
    fn axpy_matrix_accumulates_in_place() {
        let mut a = sample();
        let b = Matrix::identity(2);
        a.axpy_matrix(2.0, &b).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 1)], 6.0);
        assert!(a.axpy_matrix(1.0, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_transposed() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 0.0]).unwrap(), vec![1.0, 3.0]);
        assert_eq!(a.matvec_transposed(&[1.0, 0.0]).unwrap(), vec![1.0, 2.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_transposed(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn rank_one_update_matches_formula() {
        let mut m = Matrix::zeros(2, 2);
        m.rank_one_update(2.0, &[1.0, 3.0]);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 1)], 6.0);
        assert_eq!(m[(1, 1)], 18.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = sample();
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let neg = -&a;
        assert_eq!(neg[(1, 1)], -4.0);
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 0)], 6.0);
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3.0, 4.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn symmetrized_averages() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]).unwrap();
        let s = m.symmetrized();
        assert_eq!(s[(0, 1)], 3.0);
        assert_eq!(s[(1, 0)], 3.0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Matrix::zeros(1, 1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn diagonal_matrix() {
        let d = Matrix::diagonal(&[2.0, 3.0]);
        let v = d.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![2.0, 3.0]);
    }
}
