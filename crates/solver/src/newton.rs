//! Damped Newton minimization of smooth convex functions.
//!
//! Used as the inner loop of the barrier method ([`crate::barrier`]). Each
//! iteration solves `H d = -g` (with a Levenberg ridge when `H` loses
//! definiteness to round-off) and backtracks until the Armijo condition
//! holds. Convergence is declared when the Newton decrement
//! `lambda^2 = -g . d` falls below tolerance.

use crate::cholesky::solve_regularized;
use crate::error::{Result, SolverError};
use crate::func::Objective;
use crate::vec_ops;

/// Options controlling the Newton iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonOptions {
    /// Stop when the Newton decrement `lambda^2 / 2` falls below this value.
    pub tolerance: f64,
    /// Maximum number of Newton iterations.
    pub max_iterations: usize,
    /// Armijo sufficient-decrease constant in `(0, 0.5)`.
    pub armijo: f64,
    /// Backtracking shrink factor in `(0, 1)`.
    pub backtrack: f64,
}

impl Default for NewtonOptions {
    fn default() -> NewtonOptions {
        NewtonOptions {
            tolerance: 1e-10,
            max_iterations: 200,
            armijo: 0.25,
            backtrack: 0.5,
        }
    }
}

/// Outcome of a Newton minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Objective value at the final iterate.
    pub value: f64,
    /// Number of Newton iterations performed.
    pub iterations: usize,
}

/// Minimizes a smooth convex function with damped Newton steps.
///
/// The objective may return `f64::INFINITY` outside its domain (e.g. a
/// log-barrier); the line search rejects such points, so iterates remain in
/// the domain provided `x0` starts there.
///
/// # Errors
///
/// - [`SolverError::InvalidArgument`] if `x0` has the wrong dimension or an
///   infinite starting value.
/// - [`SolverError::MaxIterationsExceeded`] if the decrement never reaches
///   tolerance.
/// - [`SolverError::NonFinite`] if derivatives become non-finite.
///
/// # Examples
///
/// ```
/// use ref_solver::func::Quadratic;
/// use ref_solver::newton::{minimize, NewtonOptions};
/// use ref_solver::Matrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]])?;
/// let f = Quadratic::new(q, vec![-2.0, -4.0]);
/// let r = minimize(&f, &[0.0, 0.0], &NewtonOptions::default())?;
/// assert!((r.x[0] - 1.0).abs() < 1e-8);
/// assert!((r.x[1] - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn minimize(f: &dyn Objective, x0: &[f64], opts: &NewtonOptions) -> Result<NewtonResult> {
    if x0.len() != f.dim() {
        return Err(SolverError::InvalidArgument(format!(
            "start point has dimension {}, objective expects {}",
            x0.len(),
            f.dim()
        )));
    }
    let mut x = x0.to_vec();
    let mut fx = f.value(&x);
    if !fx.is_finite() {
        return Err(SolverError::InvalidArgument(
            "starting point is outside the objective's domain".to_string(),
        ));
    }
    let mut stalled = 0_u32;
    for iter in 0..opts.max_iterations {
        let g = f.gradient(&x);
        if !vec_ops::all_finite(&g) {
            return Err(SolverError::NonFinite("gradient".to_string()));
        }
        let h = f.hessian(&x);
        if !h.is_finite() {
            return Err(SolverError::NonFinite("hessian".to_string()));
        }
        let neg_g: Vec<f64> = g.iter().map(|v| -v).collect();
        let d = solve_regularized(&h.symmetrized(), &neg_g)?;
        let decrement = -vec_ops::dot(&g, &d);
        if decrement <= 0.0 {
            // Direction is not a descent direction (can happen when the
            // ridge dominates); fall back to steepest descent.
            let gd = vec_ops::dot(&g, &g);
            if gd.sqrt() <= opts.tolerance {
                return Ok(NewtonResult {
                    x,
                    value: fx,
                    iterations: iter,
                });
            }
        }
        if decrement / 2.0 <= opts.tolerance {
            return Ok(NewtonResult {
                x,
                value: fx,
                iterations: iter,
            });
        }
        // Backtracking line search with domain guard.
        let gd = vec_ops::dot(&g, &d);
        let mut t = 1.0;
        let mut accepted = false;
        for _ in 0..80 {
            let cand = vec_ops::add_scaled(&x, t, &d);
            let fc = f.value(&cand);
            if fc.is_finite() && fc <= fx + opts.armijo * t * gd {
                // Track progress relative to the function's scale; once
                // decreases fall below round-off several times in a row we
                // are at the arithmetic floor.
                if (fx - fc).abs() <= 1e-13 * (1.0 + fx.abs()) {
                    stalled += 1;
                } else {
                    stalled = 0;
                }
                x = cand;
                fx = fc;
                accepted = true;
                break;
            }
            t *= opts.backtrack;
        }
        if stalled >= 3 {
            return Ok(NewtonResult {
                x,
                value: fx,
                iterations: iter,
            });
        }
        if !accepted {
            // Step collapsed to nothing: we are as converged as arithmetic
            // permits.
            return Ok(NewtonResult {
                x,
                value: fx,
                iterations: iter,
            });
        }
    }
    Err(SolverError::MaxIterationsExceeded {
        iterations: opts.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{LogSumExpAffine, Quadratic};
    use crate::matrix::Matrix;

    #[test]
    fn quadratic_converges_in_one_step() {
        let q = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let f = Quadratic::new(q, vec![1.0, -2.0]);
        let r = minimize(&f, &[5.0, -5.0], &NewtonOptions::default()).unwrap();
        // Optimum solves Qx = -c.
        let g = f.gradient(&r.x);
        assert!(vec_ops::norm_inf(&g) < 1e-8);
        assert!(r.iterations <= 3);
    }

    #[test]
    fn minimizes_log_sum_exp() {
        // log(e^{x} + e^{-x} + e^{y} + e^{-y}) minimized at origin.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let f = LogSumExpAffine::new(a, vec![0.0; 4]);
        let r = minimize(&f, &[2.0, -3.0], &NewtonOptions::default()).unwrap();
        assert!(vec_ops::norm_inf(&r.x) < 1e-6);
        assert!((r.value - 4.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_dimension() {
        let f = Quadratic::new(Matrix::identity(2), vec![0.0, 0.0]);
        assert!(matches!(
            minimize(&f, &[0.0], &NewtonOptions::default()),
            Err(SolverError::InvalidArgument(_))
        ));
    }

    #[test]
    fn rejects_infeasible_start() {
        // A barrier-like objective that is infinite everywhere except near 0.
        struct Barrier;
        impl Objective for Barrier {
            fn dim(&self) -> usize {
                1
            }
            fn value(&self, x: &[f64]) -> f64 {
                if x[0].abs() < 1.0 {
                    -(1.0 - x[0] * x[0]).ln()
                } else {
                    f64::INFINITY
                }
            }
            fn gradient(&self, x: &[f64]) -> Vec<f64> {
                vec![2.0 * x[0] / (1.0 - x[0] * x[0])]
            }
            fn hessian(&self, x: &[f64]) -> Matrix {
                let d = 1.0 - x[0] * x[0];
                Matrix::from_vec(1, 1, vec![(2.0 * d + 4.0 * x[0] * x[0]) / (d * d)]).unwrap()
            }
        }
        assert!(matches!(
            minimize(&Barrier, &[5.0], &NewtonOptions::default()),
            Err(SolverError::InvalidArgument(_))
        ));
        // Feasible start converges to the unconstrained minimum at 0.
        let r = minimize(
            &Barrier,
            [0.9][..1].to_vec().as_slice(),
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!(r.x[0].abs() < 1e-6);
    }

    #[test]
    fn respects_iteration_limit() {
        let q = Matrix::identity(2);
        let f = Quadratic::new(q, vec![1.0, 1.0]);
        let opts = NewtonOptions {
            max_iterations: 0,
            ..NewtonOptions::default()
        };
        assert!(matches!(
            minimize(&f, &[10.0, 10.0], &opts),
            Err(SolverError::MaxIterationsExceeded { .. })
        ));
    }
}
