//! Householder QR factorization and least-squares solves.
//!
//! The factorization `A = QR` is computed with Householder reflections and
//! stored in packed form: the upper triangle of the work matrix holds `R`,
//! while the columns below the diagonal hold the (implicitly normalized)
//! Householder vectors. [`Qr::solve_least_squares`] solves
//! `min_x ||A x - b||_2` by applying `Q^T` to `b` and back-substituting.

use crate::error::{Result, SolverError};
use crate::matrix::Matrix;
use crate::tol;

/// Packed Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// # Examples
///
/// ```
/// use ref_solver::{Matrix, Qr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]])?;
/// let qr = Qr::new(&a)?;
/// let x = qr.solve_least_squares(&[3.0, 4.0, 5.0])?;
/// assert!((x[0] - 3.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    packed: Matrix,
    betas: Vec<f64>,
    m: usize,
    n: usize,
}

impl Qr {
    /// Computes the QR factorization of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `a` has fewer rows than
    /// columns, and [`SolverError::NonFinite`] if `a` contains non-finite
    /// entries.
    pub fn new(a: &Matrix) -> Result<Qr> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(SolverError::ShapeMismatch(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        if !a.is_finite() {
            return Err(SolverError::NonFinite("QR input matrix".to_string()));
        }
        let mut r = a.clone();
        let mut betas = vec![0.0; n];
        // Scratch for the trailing-panel update, allocated once per
        // factorization rather than once per reflection.
        let mut w = vec![0.0; n];
        for k in 0..n {
            let x0 = r[(k, k)];
            let sigma: f64 = (k + 1..m).map(|i| r[(i, k)] * r[(i, k)]).sum();
            if sigma == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let mu = (x0 * x0 + sigma).sqrt();
            let v0 = if x0 <= 0.0 {
                x0 - mu
            } else {
                -sigma / (x0 + mu)
            };
            let beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
            betas[k] = beta;
            // Normalize so the leading entry of v is an implicit 1.
            for i in k + 1..m {
                r[(i, k)] /= v0;
            }
            // Apply H = I - beta v v^T to the trailing panel with two row
            // sweeps: accumulate w = beta (v^T A), then subtract the outer
            // product v w^T. Each sweep walks rows contiguously instead of
            // striding down a column, while the per-entry accumulation order
            // (i ascending for every j) matches the column-at-a-time
            // formulation bit for bit. Column k is known analytically:
            // v = x - mu e1 (up to scaling), so H x = mu e1.
            w[k + 1..n].copy_from_slice(&r.row(k)[k + 1..n]);
            for i in k + 1..m {
                let rowi = r.row(i);
                let vi = rowi[k];
                for j in k + 1..n {
                    w[j] += vi * rowi[j];
                }
            }
            for wj in &mut w[k + 1..n] {
                *wj *= beta;
            }
            {
                let rowk = r.row_mut(k);
                for j in k + 1..n {
                    rowk[j] -= w[j];
                }
            }
            for i in k + 1..m {
                let rowi = r.row_mut(i);
                let vik = rowi[k];
                for j in k + 1..n {
                    rowi[j] -= w[j] * vik;
                }
            }
            r[(k, k)] = mu;
            // Column k below the diagonal now stores the Householder tail.
        }
        Ok(Qr {
            packed: r,
            betas,
            m,
            n,
        })
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| {
            if j >= i {
                self.packed[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// The orthogonal factor `Q` (`m x n`, thin form).
    pub fn q(&self) -> Matrix {
        let mut q = Matrix::zeros(self.m, self.n);
        for j in 0..self.n {
            let mut e = vec![0.0; self.m];
            e[j] = 1.0;
            self.apply_q(&mut e);
            for i in 0..self.m {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Applies `Q^T` to `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn apply_qt(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.m, "vector length must equal row count");
        for k in 0..self.n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut w = b[k];
            for i in k + 1..self.m {
                w += self.packed[(i, k)] * b[i];
            }
            w *= beta;
            b[k] -= w;
            for i in k + 1..self.m {
                b[i] -= w * self.packed[(i, k)];
            }
        }
    }

    /// Applies `Q` to `b` in place (reflections in reverse order).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn apply_q(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.m, "vector length must equal row count");
        for k in (0..self.n).rev() {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut w = b[k];
            for i in k + 1..self.m {
                w += self.packed[(i, k)] * b[i];
            }
            w *= beta;
            b[k] -= w;
            for i in k + 1..self.m {
                b[i] -= w * self.packed[(i, k)];
            }
        }
    }

    /// Solves the least-squares problem `min_x ||A x - b||_2`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `b.len()` differs from the
    /// number of rows, and [`SolverError::RankDeficient`] if `R` has a
    /// (numerically) zero diagonal entry.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.m {
            return Err(SolverError::ShapeMismatch(format!(
                "rhs length {} but matrix has {} rows",
                b.len(),
                self.m
            )));
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        let scale = self.max_abs_diag();
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let rii = self.packed[(i, i)];
            if rii.abs() <= tol::rank_threshold(scale) {
                return Err(SolverError::RankDeficient);
            }
            let mut s = qtb[i];
            for j in i + 1..self.n {
                s -= self.packed[(i, j)] * x[j];
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Absolute value of the determinant of `R` (equals `|det A|` for square
    /// `A`).
    pub fn det_abs(&self) -> f64 {
        (0..self.n).map(|i| self.packed[(i, i)].abs()).product()
    }

    fn max_abs_diag(&self) -> f64 {
        (0..self.n).fold(0.0_f64, |m, i| m.max(self.packed[(i, i)].abs()))
    }
}

/// Solves a square linear system `A x = b` via QR.
///
/// # Errors
///
/// Returns [`SolverError::NotSquare`] for rectangular `A`, plus any error
/// from [`Qr::new`] or [`Qr::solve_least_squares`] (for singular `A` the
/// latter reports [`SolverError::RankDeficient`]).
///
/// # Examples
///
/// ```
/// use ref_solver::{qr::solve, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]])?;
/// let x = solve(&a, &[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if !a.is_square() {
        return Err(SolverError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    Qr::new(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn reconstructs_input() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 10.0],
            &[1.0, -1.0, 2.0],
        ])
        .unwrap();
        let qr = Qr::new(&a).unwrap();
        let recon = qr.q().matmul(&qr.r()).unwrap();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_close(recon[(i, j)], a[(i, j)], 1e-10);
            }
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let q = Qr::new(&a).unwrap().q();
        let qtq = q.transpose().matmul(&q).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(qtq[(i, j)], expect, 1e-12);
            }
        }
    }

    #[test]
    fn solves_square_system() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let x = solve(&a, &[9.0, 8.0]).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Fit y = c0 + c1 t to four points.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 2.9, 5.1, 7.0];
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        // Normal equations solution computed by hand:
        // A^T A = [[4, 6], [6, 14]], A^T b = [16, 34.1]
        // det = 20; x = ([14*16 - 6*34.1]/20, [4*34.1 - 6*16]/20)
        assert_close(x[0], (14.0 * 16.0 - 6.0 * 34.1) / 20.0, 1e-10);
        assert_close(x[1], (4.0 * 34.1 - 6.0 * 16.0) / 20.0, 1e-10);
    }

    #[test]
    fn residual_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0], &[1.0, 0.0], &[2.0, 1.0]]).unwrap();
        let b = [1.0, -1.0, 0.5, 2.0];
        let x = Qr::new(&a).unwrap().solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let atr = a.matvec_transposed(&r).unwrap();
        for v in atr {
            assert_close(v, 0.0, 1e-10);
        }
    }

    #[test]
    fn rejects_wide_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Qr::new(&a), Err(SolverError::ShapeMismatch(_))));
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(SolverError::RankDeficient)
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let a = Matrix::from_rows(&[&[1.0], &[f64::NAN]]).unwrap();
        assert!(matches!(Qr::new(&a), Err(SolverError::NonFinite(_))));
    }

    #[test]
    fn det_abs_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert_close(qr.det_abs(), 6.0, 1e-12);
    }

    #[test]
    fn solve_rejects_rectangular() {
        let a = Matrix::zeros(3, 2);
        assert!(matches!(
            solve(&a, &[0.0; 3]),
            Err(SolverError::NotSquare { .. })
        ));
    }

    #[test]
    fn apply_q_then_qt_is_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let original = vec![1.0, -2.0, 0.5];
        let mut v = original.clone();
        qr.apply_qt(&mut v);
        qr.apply_q(&mut v);
        for (x, y) in v.iter().zip(&original) {
            assert_close(*x, *y, 1e-12);
        }
    }
}
