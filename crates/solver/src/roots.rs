//! One-dimensional root finding and minimization.
//!
//! Small utilities used by analyses that reduce to a scalar search, e.g.
//! locating crossings of the contract curve in `ref-core`'s Edgeworth
//! geometry.

use crate::error::{Result, SolverError};

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (either may be zero).
///
/// # Errors
///
/// - [`SolverError::InvalidArgument`] if `lo >= hi` or the endpoint values
///   do not bracket a root.
/// - [`SolverError::MaxIterationsExceeded`] if the interval does not shrink
///   below tolerance in `max_iters` steps (practically unreachable with
///   sensible tolerances).
///
/// # Examples
///
/// ```
/// use ref_solver::roots::bisect;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
) -> Result<f64> {
    if !(lo < hi) {
        return Err(SolverError::InvalidArgument(format!(
            "invalid bracket [{lo}, {hi}]"
        )));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(SolverError::InvalidArgument(
            "endpoints do not bracket a root".to_string(),
        ));
    }
    for _ in 0..max_iters {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a) / 2.0 < tol {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Err(SolverError::MaxIterationsExceeded {
        iterations: max_iters,
    })
}

/// Minimizes a unimodal function on `[lo, hi]` by golden-section search.
///
/// # Errors
///
/// Returns [`SolverError::InvalidArgument`] if `lo >= hi`.
///
/// # Examples
///
/// ```
/// use ref_solver::roots::golden_section_min;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = golden_section_min(|x| (x - 1.5) * (x - 1.5), 0.0, 4.0, 1e-10)?;
/// assert!((x - 1.5).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
pub fn golden_section_min<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64) -> Result<f64> {
    if !(lo < hi) {
        return Err(SolverError::InvalidArgument(format!(
            "invalid interval [{lo}, {hi}]"
        )));
    }
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    Ok(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_cubic_root() {
        let r = bisect(|x| x * x * x - x - 2.0, 1.0, 2.0, 1e-12, 200).unwrap();
        assert!((r * r * r - r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_returns_exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_err());
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12, 100).is_err());
    }

    #[test]
    fn golden_section_finds_minimum() {
        let x = golden_section_min(|x| x.cos(), 2.0, 4.5, 1e-10).unwrap();
        assert!((x - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn golden_section_rejects_bad_interval() {
        assert!(golden_section_min(|x| x, 1.0, 1.0, 1e-10).is_err());
    }
}
