//! Unified numerical tolerances for rank, degeneracy and definiteness
//! decisions.
//!
//! Before this module existed, `qr`, `lstsq` and `cholesky` each carried
//! their own ad-hoc constants for "numerically zero". They are collected
//! here with their rationale so that every layer — the batch QR path, the
//! incremental update path ([`crate::update`]), and the ridge fallback in
//! Newton steps — classifies the *same* matrix the same way. The market's
//! degenerate-refit quarantine logic depends on that consistency: an agent
//! must not flip between "collinear" and "fine" depending on which solver
//! path happened to run.
//!
//! All thresholds are relative where possible: a diagonal entry is compared
//! against the largest diagonal magnitude (floored at 1.0 so an
//! all-tiny matrix is still declared deficient rather than scaled into
//! apparent health).

/// Relative tolerance below which a triangular diagonal entry is treated as
/// zero when deciding rank. Shared by [`crate::qr::Qr::solve_least_squares`]
/// and [`crate::update::UpdatableLstsq::solve`].
///
/// `1e-12` sits ~4 decimal digits above `f64::EPSILON`, absorbing the
/// round-off a Householder or Givens reduction introduces on a
/// well-conditioned design while still flagging genuinely collinear data.
pub const RANK_TOL: f64 = 1e-12;

/// Relative size of the initial ridge `tau` used by
/// [`crate::cholesky::solve_regularized`] when a Hessian loses positive
/// definiteness to round-off. Grows by [`RIDGE_GROWTH`] per retry.
pub const RIDGE_TOL: f64 = 1e-12;

/// Multiplicative growth of the ridge between factorization retries.
pub const RIDGE_GROWTH: f64 = 10.0;

/// Maximum ridge retries before giving up
/// (`tau` spans `RIDGE_TOL * RIDGE_GROWTH^RIDGE_RETRIES` relative to the
/// matrix scale — far beyond any system worth solving).
pub const RIDGE_RETRIES: usize = 40;

/// Floor on `alpha^2 = 1 - ||a||^2` in a row downdate
/// ([`crate::update::UpdatableLstsq::downdate`]). A removed row that drives
/// `alpha^2` at or below this leaves a numerically rank-deficient triangle,
/// so the downdate is refused and the caller refactorizes from scratch.
pub const DOWNDATE_TOL: f64 = 1e-12;

/// The rank threshold for a triangle whose largest diagonal magnitude is
/// `scale`: entries at or below this are treated as zero.
pub fn rank_threshold(scale: f64) -> f64 {
    RANK_TOL * scale.max(1.0)
}

/// The initial ridge for a matrix whose largest entry magnitude is `scale`.
pub fn initial_ridge(scale: f64) -> f64 {
    RIDGE_TOL * scale.max(1.0)
}

/// Residual sum of squares at or below this is "numerically zero" for a
/// response of `m` observations — the zero-variance R² convention shared by
/// [`crate::lstsq::fit`] and the incremental path: a zero-variance response
/// gets R² = 1.0 when the residual clears this bound and 0.0 otherwise.
pub fn zero_variance_rss(m: usize) -> f64 {
    f64::EPSILON * m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_relative_with_unit_floor() {
        assert_eq!(rank_threshold(0.5), RANK_TOL);
        assert_eq!(rank_threshold(2.0), 2.0 * RANK_TOL);
        assert_eq!(initial_ridge(0.0), RIDGE_TOL);
        assert_eq!(initial_ridge(1e6), 1e6 * RIDGE_TOL);
    }

    #[test]
    fn zero_variance_bound_scales_with_rows() {
        assert_eq!(zero_variance_rss(3), 3.0 * f64::EPSILON);
        assert!(zero_variance_rss(0) == 0.0);
    }
}
