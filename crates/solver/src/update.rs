//! Incrementally updatable least squares.
//!
//! [`UpdatableLstsq`] maintains the upper-triangular factor `T` of a QR
//! factorization of the *augmented* design `[X | y]`. Appending an
//! observation rotates one new row into the triangle with Givens rotations
//! (`O(k^2)` per row instead of the `O(m k^2)` of refactorizing), and
//! removing an observation applies the LINPACK `dchdd` downdating algorithm,
//! so a bounded sliding window costs `O(k^2)` per step regardless of how
//! many observations have ever been seen.
//!
//! Because the response column rides along inside the triangle, a solve
//! needs no access to past rows: the coefficients come from
//! back-substituting the leading `k x k` block against the response column,
//! and the residual sum of squares is the square of the triangle's last
//! diagonal entry. `R^2` follows from running response sums. The rank and
//! zero-variance conventions are shared with the batch path through
//! [`crate::tol`], so both paths classify a degenerate design identically.
//!
//! # Examples
//!
//! ```
//! use ref_solver::update::UpdatableLstsq;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut inc = UpdatableLstsq::new(2);
//! for t in 0..4 {
//!     inc.append(&[1.0, t as f64], 1.0 + 2.0 * t as f64)?;
//! }
//! let fit = inc.solve()?;
//! assert!((fit.coefficients()[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::error::{Result, SolverError};
use crate::tol;
use crate::vec_ops;

/// Result of solving an [`UpdatableLstsq`] at its current window.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdatableFit {
    coefficients: Vec<f64>,
    r_squared: f64,
    residual_sum_of_squares: f64,
    total_sum_of_squares: f64,
}

impl UpdatableFit {
    /// Fitted coefficients, one per design column.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Coefficient of determination, with the same zero-variance
    /// conventions as [`crate::lstsq::Fit::r_squared`].
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Residual sum of squares `||y - X b||^2`.
    pub fn residual_sum_of_squares(&self) -> f64 {
        self.residual_sum_of_squares
    }

    /// Total sum of squares `sum (y_i - mean(y))^2`.
    pub fn total_sum_of_squares(&self) -> f64 {
        self.total_sum_of_squares
    }
}

/// Least-squares state supporting `O(k^2)` row append and downdate.
///
/// The state is the `(k+1) x (k+1)` upper-triangular factor of `[X | y]`
/// plus the running sums needed for `R^2` — past rows are *not* stored, so
/// memory is constant in the number of observations. See the module docs
/// for the math.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdatableLstsq {
    /// Coefficient columns.
    k: usize,
    /// Triangle side `k + 1` (response column included).
    p: usize,
    /// Row-major `p x p` buffer; entries below the diagonal stay zero.
    t: Vec<f64>,
    /// Rows currently in the window (appends minus downdates).
    m: usize,
    sum_y: f64,
    sum_yy: f64,
    /// Scratch for the row being rotated in or out.
    z: Vec<f64>,
}

impl UpdatableLstsq {
    /// Creates an empty accumulator for designs with `k` columns.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> UpdatableLstsq {
        assert!(k > 0, "design needs at least one column");
        let p = k + 1;
        UpdatableLstsq {
            k,
            p,
            t: vec![0.0; p * p],
            m: 0,
            sum_y: 0.0,
            sum_yy: 0.0,
            z: vec![0.0; p],
        }
    }

    /// Number of design columns.
    pub fn num_coefficients(&self) -> usize {
        self.k
    }

    /// Rows currently folded into the window.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Rotates the observation `(row, y)` into the triangle.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] if `row.len() != k`, and
    /// [`SolverError::NonFinite`] for non-finite values (the triangle is
    /// left untouched in both cases).
    pub fn append(&mut self, row: &[f64], y: f64) -> Result<()> {
        self.load_row(row, y)?;
        let p = self.p;
        for i in 0..p {
            let b = self.z[i];
            if b == 0.0 {
                continue;
            }
            let a = self.t[i * p + i];
            let r = (a * a + b * b).sqrt();
            let (c, s) = (a / r, b / r);
            self.t[i * p + i] = r;
            for j in i + 1..p {
                let tij = self.t[i * p + j];
                let zj = self.z[j];
                self.t[i * p + j] = c * tij + s * zj;
                self.z[j] = c * zj - s * tij;
            }
        }
        self.m += 1;
        self.sum_y += y;
        self.sum_yy += y * y;
        Ok(())
    }

    /// Rotates the observation `(row, y)` back *out* of the triangle
    /// (LINPACK `dchdd`). The observation must be one that is currently in
    /// the window; removing anything else silently corrupts the state, as
    /// with any Cholesky downdate.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] / [`SolverError::NonFinite`]
    /// as [`append`](UpdatableLstsq::append) does, and
    /// [`SolverError::RankDeficient`] when the removal would leave a
    /// numerically rank-deficient triangle (`alpha^2 <= `
    /// [`tol::DOWNDATE_TOL`]) — the caller should refactorize from its
    /// retained rows instead. On any error the triangle is unchanged.
    pub fn downdate(&mut self, row: &[f64], y: f64) -> Result<()> {
        self.load_row(row, y)?;
        let p = self.p;
        if self.m == 0 {
            return Err(SolverError::InvalidArgument(
                "cannot downdate an empty window".to_string(),
            ));
        }
        // Solve T^T a = z by forward substitution (reusing z as a).
        let diag_scale = (0..p).fold(0.0_f64, |acc, i| acc.max(self.t[i * p + i].abs()));
        let threshold = tol::rank_threshold(diag_scale);
        for i in 0..p {
            let mut s = self.z[i];
            for j in 0..i {
                s -= self.t[j * p + i] * self.z[j];
            }
            let d = self.t[i * p + i];
            if d.abs() <= threshold {
                return Err(SolverError::RankDeficient);
            }
            self.z[i] = s / d;
        }
        let norm_sq = vec_ops::dot(&self.z, &self.z);
        let alpha_sq = 1.0 - norm_sq;
        if alpha_sq <= tol::DOWNDATE_TOL {
            return Err(SolverError::RankDeficient);
        }
        // Build the rotation sequence bottom-up, then sweep it through every
        // column top-down; `xx` reconstructs the removed row as it goes.
        let mut alpha = alpha_sq.sqrt();
        let mut c = vec![0.0; p];
        let mut s = vec![0.0; p];
        for i in (0..p).rev() {
            let scale = alpha + self.z[i].abs();
            let aa = alpha / scale;
            let bb = self.z[i] / scale;
            let norm = (aa * aa + bb * bb).sqrt();
            c[i] = aa / norm;
            s[i] = bb / norm;
            alpha = scale * norm;
        }
        for j in 0..p {
            let mut xx = 0.0;
            for i in (0..=j).rev() {
                let tij = self.t[i * p + j];
                let rotated = c[i] * xx + s[i] * tij;
                self.t[i * p + j] = c[i] * tij - s[i] * xx;
                xx = rotated;
            }
        }
        self.m -= 1;
        self.sum_y -= y;
        self.sum_yy -= y * y;
        Ok(())
    }

    /// Solves the least-squares problem over the current window.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::RankDeficient`] when the leading `k x k`
    /// block of the triangle has a numerically zero diagonal — the same
    /// relative test ([`tol::rank_threshold`]) the batch QR path applies,
    /// which an underdetermined window (`rows() < k`) always fails.
    pub fn solve(&self) -> Result<UpdatableFit> {
        let (k, p) = (self.k, self.p);
        let scale = (0..k).fold(0.0_f64, |acc, i| acc.max(self.t[i * p + i].abs()));
        let threshold = tol::rank_threshold(scale);
        let mut coefficients = vec![0.0; k];
        for i in (0..k).rev() {
            let rii = self.t[i * p + i];
            if rii.abs() <= threshold {
                return Err(SolverError::RankDeficient);
            }
            let mut s = self.t[i * p + k];
            for j in i + 1..k {
                s -= self.t[i * p + j] * coefficients[j];
            }
            coefficients[i] = s / rii;
        }
        let tkk = self.t[k * p + k];
        let residual_sum_of_squares = tkk * tkk;
        let total_sum_of_squares = if self.m == 0 {
            0.0
        } else {
            (self.sum_yy - self.sum_y * self.sum_y / self.m as f64).max(0.0)
        };
        let r_squared = if total_sum_of_squares > 0.0 {
            1.0 - residual_sum_of_squares / total_sum_of_squares
        } else if residual_sum_of_squares <= tol::zero_variance_rss(self.m) {
            1.0
        } else {
            0.0
        };
        Ok(UpdatableFit {
            coefficients,
            r_squared,
            residual_sum_of_squares,
            total_sum_of_squares,
        })
    }

    /// Validates `(row, y)` and stages it into the rotation scratch.
    fn load_row(&mut self, row: &[f64], y: f64) -> Result<()> {
        if row.len() != self.k {
            return Err(SolverError::ShapeMismatch(format!(
                "observation has {} covariates, design has {}",
                row.len(),
                self.k
            )));
        }
        if !vec_ops::all_finite(row) || !y.is_finite() {
            return Err(SolverError::NonFinite(
                "incremental least-squares observation".to_string(),
            ));
        }
        self.z[..self.k].copy_from_slice(row);
        self.z[self.k] = y;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq;
    use crate::matrix::Matrix;

    fn design_25x3() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (i, &bw) in [0.8, 1.6, 3.2, 6.4, 12.8].iter().enumerate() {
            for (j, &mb) in [0.125, 0.25, 0.5, 1.0, 2.0].iter().enumerate() {
                rows.push(vec![1.0, f64::ln(bw), f64::ln(mb)]);
                // Noise with an i*j cross term so the response is NOT an
                // exact linear function of the covariates (the grids are
                // geometric, so ln bw / ln mb are linear in i / j).
                let noise = 0.02 * (i * j) as f64 + 0.013 * ((i + 2 * j) % 3) as f64;
                y.push(0.3 * f64::ln(bw) + 0.5 * f64::ln(mb) + noise);
            }
        }
        (rows, y)
    }

    fn batch(rows: &[Vec<f64>], y: &[f64]) -> lstsq::Fit {
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let x = Matrix::from_vec(rows.len(), rows[0].len(), flat).unwrap();
        lstsq::fit(&x, y).unwrap()
    }

    #[test]
    fn matches_batch_least_squares() {
        let (rows, y) = design_25x3();
        let mut inc = UpdatableLstsq::new(3);
        for (r, &yi) in rows.iter().zip(&y) {
            inc.append(r, yi).unwrap();
        }
        let fit = inc.solve().unwrap();
        let reference = batch(&rows, &y);
        for (a, b) in fit.coefficients().iter().zip(reference.coefficients()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        assert!((fit.r_squared() - reference.r_squared()).abs() < 1e-10);
        assert!(
            (fit.residual_sum_of_squares() - reference.residual_sum_of_squares()).abs() < 1e-10
        );
        assert!((fit.total_sum_of_squares() - reference.total_sum_of_squares()).abs() < 1e-9);
        assert_eq!(inc.rows(), 25);
    }

    #[test]
    fn downdate_reverses_append() {
        let (rows, y) = design_25x3();
        let mut inc = UpdatableLstsq::new(3);
        for (r, &yi) in rows.iter().zip(&y) {
            inc.append(r, yi).unwrap();
        }
        let before = inc.solve().unwrap();
        // A row inside the covariate range with an on-trend response keeps
        // its leverage well away from 1, so the downdate stays well posed.
        let extra = [1.0, 0.9, -0.8];
        inc.append(&extra, 0.3 * 0.9 - 0.5 * 0.8 + 0.02).unwrap();
        inc.downdate(&extra, 0.3 * 0.9 - 0.5 * 0.8 + 0.02).unwrap();
        let after = inc.solve().unwrap();
        for (a, b) in after.coefficients().iter().zip(before.coefficients()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        assert!((after.r_squared() - before.r_squared()).abs() < 1e-10);
        assert_eq!(inc.rows(), 25);
    }

    #[test]
    fn sliding_window_matches_fresh_triangle() {
        let (rows, y) = design_25x3();
        let window = 10;
        let mut inc = UpdatableLstsq::new(3);
        for (i, (r, &yi)) in rows.iter().zip(&y).enumerate() {
            inc.append(r, yi).unwrap();
            if i >= window {
                inc.downdate(&rows[i - window], y[i - window]).unwrap();
            }
        }
        let windowed = inc.solve().unwrap();
        let start = rows.len() - window;
        let reference = batch(&rows[start..], &y[start..]);
        for (a, b) in windowed.coefficients().iter().zip(reference.coefficients()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        assert!((windowed.r_squared() - reference.r_squared()).abs() < 1e-9);
    }

    #[test]
    fn collinear_design_is_rank_deficient() {
        let mut inc = UpdatableLstsq::new(2);
        for t in 0..5 {
            inc.append(&[t as f64, 2.0 * t as f64], t as f64).unwrap();
        }
        assert!(matches!(inc.solve(), Err(SolverError::RankDeficient)));
    }

    #[test]
    fn underdetermined_window_is_rank_deficient() {
        let mut inc = UpdatableLstsq::new(3);
        inc.append(&[1.0, 2.0, 3.0], 1.0).unwrap();
        assert!(matches!(inc.solve(), Err(SolverError::RankDeficient)));
    }

    #[test]
    fn rejects_bad_rows_without_state_change() {
        let mut inc = UpdatableLstsq::new(2);
        inc.append(&[1.0, 2.0], 1.0).unwrap();
        let snapshot = inc.clone();
        assert!(inc.append(&[1.0], 1.0).is_err());
        assert!(inc.append(&[1.0, f64::NAN], 1.0).is_err());
        assert!(inc.append(&[1.0, 2.0], f64::INFINITY).is_err());
        assert!(inc.downdate(&[1.0], 1.0).is_err());
        assert_eq!(inc.t, snapshot.t);
        assert_eq!(inc.rows(), 1);
    }

    #[test]
    fn downdating_to_deficiency_is_refused() {
        let mut inc = UpdatableLstsq::new(2);
        inc.append(&[1.0, 0.0], 1.0).unwrap();
        inc.append(&[0.0, 1.0], 2.0).unwrap();
        inc.append(&[1.0, 1.0], 3.0).unwrap();
        // Removing the only row that separates the columns degrades rank.
        let before = inc.clone();
        let r = inc.downdate(&[1.0, 0.0], 1.0).and_then(|()| {
            // Either the downdate itself or the subsequent solve must
            // flag the deficiency once a second independent row goes.
            inc.downdate(&[0.0, 1.0], 2.0)?;
            inc.solve().map(|_| ())
        });
        assert!(matches!(r, Err(SolverError::RankDeficient)), "{r:?}");
        drop(before);
    }

    #[test]
    fn zero_variance_conventions_match_batch() {
        let mut inc = UpdatableLstsq::new(2);
        let rows = [[1.0, 1.0], [1.0, 2.0], [1.0, 3.0]];
        for r in &rows {
            inc.append(r, 5.0).unwrap();
        }
        let fit = inc.solve().unwrap();
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
        assert!(fit.total_sum_of_squares().abs() < 1e-9);
    }

    #[test]
    fn empty_window_downdate_rejected() {
        let mut inc = UpdatableLstsq::new(1);
        assert!(inc.downdate(&[1.0], 1.0).is_err());
    }
}
