//! Small vector helpers shared by the factorizations and optimizers.
//!
//! These operate on plain `&[f64]` slices; the crate does not define a vector
//! newtype because callers (regression, interior point) overwhelmingly work
//! with borrowed buffers.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(ref_solver::vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
///
/// # Examples
///
/// ```
/// assert_eq!(ref_solver::vec_ops::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (largest absolute entry), `0.0` for an empty slice.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y += s * x`, in place.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(s: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += s * xi;
    }
}

/// Returns `a + s * b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_scaled(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add_scaled length mismatch");
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

/// Elementwise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    add_scaled(a, -1.0, b)
}

/// Scales a slice in place.
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Sum of entries.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean, `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Whether every entry is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|v| v.is_finite())
}

/// Numerically stable log-sum-exp: `log(sum_i exp(a_i))`.
///
/// Returns negative infinity for an empty slice (the sum of zero terms).
///
/// # Examples
///
/// ```
/// let v = ref_solver::vec_ops::log_sum_exp(&[1000.0, 1000.0]);
/// assert!((v - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
/// ```
pub fn log_sum_exp(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = a.iter().fold(f64::NEG_INFINITY, |acc, &v| acc.max(v));
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = a.iter().map(|&v| (v - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[0.0]), 0.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn add_scaled_and_sub() {
        assert_eq!(add_scaled(&[1.0, 2.0], 3.0, &[1.0, 1.0]), vec![4.0, 5.0]);
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 1.0]), vec![2.0, 1.0]);
    }

    #[test]
    fn scale_sum_mean() {
        let mut a = vec![1.0, 2.0, 3.0];
        scale(&mut a, 2.0);
        assert_eq!(sum(&a), 12.0);
        assert_eq!(mean(&a), 4.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn log_sum_exp_is_stable() {
        // Would overflow with a naive implementation.
        let v = log_sum_exp(&[1e4, 1e4 - 1.0]);
        assert!(v.is_finite());
        assert!(v > 1e4);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_matches_direct_for_small_values() {
        let direct = (0.5_f64.exp() + 1.5_f64.exp() + (-0.3_f64).exp()).ln();
        let stable = log_sum_exp(&[0.5, 1.5, -0.3]);
        assert!((direct - stable).abs() < 1e-12);
    }

    #[test]
    fn all_finite_detects_nan() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
