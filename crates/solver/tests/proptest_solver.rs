//! Property-based tests for the numerical kernels.

use proptest::prelude::*;
use ref_solver::gp::{GeometricProgram, Monomial, Posynomial};
use ref_solver::vec_ops;
use ref_solver::{lstsq, Cholesky, Matrix, Qr};

/// A strategy for well-conditioned matrix entries.
fn entry() -> impl Strategy<Value = f64> {
    (-100i32..=100).prop_map(|v| v as f64 / 10.0)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(entry(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("sized buffer"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qr_reconstructs_random_matrices(m in matrix(6, 4)) {
        let qr = Qr::new(&m).unwrap();
        let recon = qr.q().matmul(&qr.r()).unwrap();
        let diff = recon.sub_matrix(&m).unwrap();
        prop_assert!(diff.max_abs() < 1e-9 * (1.0 + m.max_abs()));
    }

    #[test]
    fn qr_q_is_orthonormal(m in matrix(7, 3)) {
        let q = Qr::new(&m).unwrap().q();
        let qtq = q.transpose().matmul(&q).unwrap();
        let eye = Matrix::identity(3);
        let diff = qtq.sub_matrix(&eye).unwrap();
        prop_assert!(diff.max_abs() < 1e-9);
    }

    #[test]
    fn least_squares_residual_is_orthogonal(
        m in matrix(8, 3),
        b in prop::collection::vec(entry(), 8),
    ) {
        let qr = Qr::new(&m).unwrap();
        let x = match qr.solve_least_squares(&b) {
            Ok(x) => x,
            // Random matrices can be rank deficient; that is a valid
            // outcome, not a property failure.
            Err(_) => return Ok(()),
        };
        let ax = m.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let atr = m.matvec_transposed(&r).unwrap();
        let scale = 1.0 + vec_ops::norm_inf(&b) + m.max_abs();
        prop_assert!(vec_ops::norm_inf(&atr) < 1e-7 * scale * scale);
    }

    #[test]
    fn cholesky_solves_spd_systems(a in matrix(5, 5), b in prop::collection::vec(entry(), 5)) {
        // A A^T + I is symmetric positive definite.
        let mut spd = a.matmul(&a.transpose()).unwrap();
        for i in 0..5 {
            spd[(i, i)] += 1.0;
        }
        let x = Cholesky::new(&spd).unwrap().solve(&b).unwrap();
        let ax = spd.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-6 * (1.0 + spd.max_abs() * vec_ops::norm_inf(&b)));
        }
    }

    #[test]
    fn log_sum_exp_bounds(v in prop::collection::vec(-50.0..50.0f64, 1..10)) {
        let lse = vec_ops::log_sum_exp(&v);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (v.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn lstsq_recovers_exact_linear_models(
        c0 in entry(),
        c1 in entry(),
        c2 in entry(),
    ) {
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![(i % 4) as f64, (i / 2) as f64 * 1.5])
            .collect();
        let x = lstsq::design_with_intercept(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| c0 + c1 * r[0] + c2 * r[1]).collect();
        let fit = lstsq::fit(&x, &y).unwrap();
        prop_assert!((fit.coefficients()[0] - c0).abs() < 1e-8);
        prop_assert!((fit.coefficients()[1] - c1).abs() < 1e-8);
        prop_assert!((fit.coefficients()[2] - c2).abs() < 1e-8);
    }

    #[test]
    fn gp_budget_problem_matches_closed_form(
        a1 in 0.1..1.0f64,
        a2 in 0.1..1.0f64,
        budget in 1.0..50.0f64,
    ) {
        // maximize x^a1 y^a2 s.t. (x + y)/budget <= 1
        // has closed form x = a1/(a1+a2) * budget.
        let obj = Monomial::new(1.0, vec![a1, a2]).unwrap();
        let mut gp = GeometricProgram::minimize(2, obj.reciprocal().into()).unwrap();
        gp.add_constraint(
            Posynomial::from_monomials(vec![
                Monomial::new(1.0 / budget, vec![1.0, 0.0]).unwrap(),
                Monomial::new(1.0 / budget, vec![0.0, 1.0]).unwrap(),
            ])
            .unwrap(),
        )
        .unwrap();
        let sol = gp.solve(&[budget / 3.0, budget / 3.0]).unwrap();
        let expect_x = a1 / (a1 + a2) * budget;
        prop_assert!(
            (sol.x[0] - expect_x).abs() < 1e-2 * budget,
            "x {} expected {expect_x}",
            sol.x[0]
        );
    }

    #[test]
    fn monomial_reciprocal_inverts(coeff in 0.1..10.0f64, e1 in -2.0..2.0f64, e2 in -2.0..2.0f64) {
        let m = Monomial::new(coeff, vec![e1, e2]).unwrap();
        let r = m.reciprocal();
        for (x, y) in [(0.5, 2.0), (3.0, 0.25), (1.0, 1.0)] {
            let prod = m.eval(&[x, y]) * r.eval(&[x, y]);
            prop_assert!((prod - 1.0).abs() < 1e-12);
        }
    }
}
