//! Property-based tests for the incremental least-squares path and the
//! warm-started GP solver.
//!
//! The incremental properties compare an appended/downdated triangle
//! against a from-scratch refactorization of the same surviving rows (same
//! Givens code path) and against the batch Householder path, to 1e-10 on
//! well-conditioned designs. The GP property checks that a warm-started
//! solve of a randomized Cobb-Douglas market lands on the cold-started
//! optimum within the solver's tolerance.

use proptest::prelude::*;
use ref_solver::gp::{GeometricProgram, GpWarmStart, Monomial, Posynomial};
use ref_solver::update::UpdatableLstsq;
use ref_solver::{lstsq, Matrix};

/// Covariate rows whose columns are independent by construction: an
/// intercept, a per-row varying term, and a nonlinear cross term, plus
/// value jitter so no two designs coincide.
fn design(m: usize, k: usize, jitter: &[f64]) -> Vec<Vec<f64>> {
    (0..m)
        .map(|i| {
            (0..k)
                .map(|j| match j {
                    0 => 1.0,
                    _ => {
                        let base = ((i * (j + 2) + j) % 7) as f64 - 3.0;
                        base + 0.1 * jitter[(i * k + j) % jitter.len()]
                    }
                })
                .collect()
        })
        .collect()
}

fn responses(rows: &[Vec<f64>], jitter: &[f64]) -> Vec<f64> {
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            let trend: f64 = r
                .iter()
                .enumerate()
                .map(|(j, v)| (j as f64 + 0.5) * v)
                .sum();
            trend + jitter[i % jitter.len()] + 0.05 * ((i * i) % 11) as f64
        })
        .collect()
}

fn batch_fit(rows: &[Vec<f64>], y: &[f64]) -> Option<lstsq::Fit> {
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    let x = Matrix::from_vec(rows.len(), rows[0].len(), flat).unwrap();
    lstsq::fit(&x, y).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn append_matches_from_scratch_refactorization(
        m in 6usize..40,
        k in 1usize..5,
        jitter in prop::collection::vec(-1.0..1.0f64, 8..24),
    ) {
        if m <= k + 1 {
            return Ok(());
        }
        let rows = design(m, k, &jitter);
        let y = responses(&rows, &jitter);
        let mut inc = UpdatableLstsq::new(k);
        for (r, &yi) in rows.iter().zip(&y) {
            inc.append(r, yi).unwrap();
        }
        let Some(reference) = batch_fit(&rows, &y) else {
            // Rank-deficient draw: the incremental path must agree on the
            // classification rather than return garbage coefficients.
            prop_assert!(inc.solve().is_err());
            return Ok(());
        };
        let fit = inc.solve().unwrap();
        for (a, b) in fit.coefficients().iter().zip(reference.coefficients()) {
            prop_assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()), "{a} vs {b}");
        }
        prop_assert!((fit.r_squared() - reference.r_squared()).abs() < 1e-10);
        prop_assert!(
            (fit.residual_sum_of_squares() - reference.residual_sum_of_squares()).abs()
                < 1e-9 * (1.0 + reference.residual_sum_of_squares())
        );
    }

    #[test]
    fn windowed_downdate_matches_fresh_triangle(
        m in 10usize..40,
        k in 1usize..4,
        window in 6usize..12,
        jitter in prop::collection::vec(-1.0..1.0f64, 8..24),
    ) {
        if window <= k + 1 || m <= window {
            return Ok(());
        }
        let rows = design(m, k, &jitter);
        let y = responses(&rows, &jitter);
        let mut inc = UpdatableLstsq::new(k);
        let mut ok = true;
        for (i, (r, &yi)) in rows.iter().zip(&y).enumerate() {
            inc.append(r, yi).unwrap();
            if i >= window && inc.downdate(&rows[i - window], y[i - window]).is_err() {
                // A refused downdate (near-deficient window) is a valid
                // outcome; the caller refactorizes in that case.
                ok = false;
                break;
            }
        }
        if !ok {
            return Ok(());
        }
        // From-scratch refactorization over the surviving rows, through the
        // same Givens code path.
        let start = rows.len() - window;
        let mut fresh = UpdatableLstsq::new(k);
        for (r, &yi) in rows[start..].iter().zip(&y[start..]) {
            fresh.append(r, yi).unwrap();
        }
        prop_assert_eq!(inc.rows(), fresh.rows());
        match (inc.solve(), fresh.solve()) {
            (Ok(a), Ok(b)) => {
                for (x, z) in a.coefficients().iter().zip(b.coefficients()) {
                    prop_assert!((x - z).abs() < 1e-10 * (1.0 + z.abs()), "{x} vs {z}");
                }
                prop_assert!((a.r_squared() - b.r_squared()).abs() < 1e-8);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "classification diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn warm_started_gp_agrees_with_cold_on_random_cobb_douglas_markets(
        e in prop::collection::vec(0.15..0.9f64, 4),
        cap1 in 8.0..32.0f64,
        cap2 in 4.0..16.0f64,
    ) {
        // Two agents, two resources: maximize the Nash product
        // prod_i x_i1^{e_i1} x_i2^{e_i2} under per-resource capacities.
        // Variables ordered (x11, x12, x21, x22).
        let welfare = Monomial::new(1.0, vec![e[0], e[1], e[2], e[3]]).unwrap();
        let mut gp = GeometricProgram::minimize(4, welfare.reciprocal().into()).unwrap();
        gp.add_constraint(Posynomial::from_monomials(vec![
            Monomial::new(1.0 / cap1, vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
            Monomial::new(1.0 / cap1, vec![0.0, 0.0, 1.0, 0.0]).unwrap(),
        ]).unwrap()).unwrap();
        gp.add_constraint(Posynomial::from_monomials(vec![
            Monomial::new(1.0 / cap2, vec![0.0, 1.0, 0.0, 0.0]).unwrap(),
            Monomial::new(1.0 / cap2, vec![0.0, 0.0, 0.0, 1.0]).unwrap(),
        ]).unwrap()).unwrap();
        let x0 = [cap1 / 3.0, cap2 / 3.0, cap1 / 3.0, cap2 / 3.0];
        let cold = gp.solve(&x0).unwrap();
        let warm = gp
            .solve_warm(&x0, Some(&GpWarmStart::from_solution(&cold)))
            .unwrap();
        prop_assert!(warm.outer_iterations <= cold.outer_iterations);
        let scale = cap1.max(cap2);
        for (w, c) in warm.x.iter().zip(&cold.x) {
            prop_assert!((w - c).abs() < 1e-3 * scale, "{w} vs {c}");
        }
        prop_assert!(
            (warm.objective_value - cold.objective_value).abs()
                <= 1e-4 * (1.0 + cold.objective_value.abs())
        );
    }
}
