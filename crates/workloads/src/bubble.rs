//! Bubble-Up-style sensitivity profiling (§4.4's first offline option).
//!
//! "A user can co-locate its task with synthetic benchmarks that exert
//! tunable pressure on the memory hierarchy [Mars et al.]. Thus, profiles
//! would quantify cache and bandwidth sensitivity."
//!
//! A [`Bubble`] is a co-runner whose cache footprint and bandwidth appetite
//! are dialed by a pressure knob. [`bubble_profile`] co-runs the target
//! workload against a sweep of bubble pressures on the shared platform and
//! reports the target's IPC degradation curve — an alternative route to the
//! same sensitivity information the 25-configuration sweep measures, usable
//! on machines where cache ways and bandwidth cannot be partitioned for
//! profiling.

use ref_sim::config::PlatformConfig;
use ref_sim::system::MulticoreSystem;
use ref_sim::trace::Op;

use crate::generator::{SyntheticWorkload, WorkloadParams};
use crate::profiles::Benchmark;

/// A tunable-pressure co-runner.
///
/// Pressure 0 is a nearly idle companion; pressure 1 streams flat out
/// through a working set sized to evict the whole L2.
///
/// # Examples
///
/// ```
/// use ref_workloads::bubble::Bubble;
///
/// let light = Bubble::new(0.1).unwrap();
/// let heavy = Bubble::new(0.9).unwrap();
/// assert!(heavy.params().streaming_fraction > light.params().streaming_fraction);
/// ```
#[derive(Debug, Clone)]
pub struct Bubble {
    pressure: f64,
    params: WorkloadParams,
}

impl Bubble {
    /// Creates a bubble exerting the given pressure in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a message if `pressure` is outside `[0, 1]` or not finite.
    pub fn new(pressure: f64) -> Result<Bubble, String> {
        if !(pressure.is_finite() && (0.0..=1.0).contains(&pressure)) {
            return Err(format!("pressure must be in [0, 1], got {pressure}"));
        }
        // Scale memory intensity, streaming appetite and footprint with
        // pressure; keep everything independent (a pure resource hog).
        let params = WorkloadParams {
            memory_fraction: 0.05 + 0.9 * pressure,
            hot_fraction: 0.2 * (1.0 - pressure),
            streaming_fraction: 0.3 + 0.6 * pressure,
            working_set_bytes: (256.0 * 1024.0 * (1.0 + 15.0 * pressure)) as u64,
            store_fraction: 0.3,
            dependent_fraction: 0.05,
        };
        Ok(Bubble { pressure, params })
    }

    /// The pressure knob value.
    pub fn pressure(&self) -> f64 {
        self.pressure
    }

    /// The generator parameters this pressure maps to.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The bubble's instruction stream.
    ///
    /// # Panics
    ///
    /// Never panics: the parameter mapping is valid for every pressure in
    /// `[0, 1]` (covered by tests).
    pub fn stream(&self, seed: u64) -> SyntheticWorkload {
        SyntheticWorkload::new(self.params, seed ^ 0x00B0_B1E5).expect("pressure mapping is valid")
    }
}

/// One point of a bubble sensitivity curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BubblePoint {
    /// Co-runner pressure.
    pub pressure: f64,
    /// Target IPC while co-running.
    pub target_ipc: f64,
    /// Target L2 hit rate while co-running.
    pub target_l2_hit_rate: f64,
}

/// A target workload's degradation curve under increasing co-runner
/// pressure.
#[derive(Debug, Clone, PartialEq)]
pub struct BubbleCurve {
    /// Target workload name.
    pub workload: String,
    /// Points in increasing pressure order.
    pub points: Vec<BubblePoint>,
}

impl BubbleCurve {
    /// Relative IPC drop from the lightest to the heaviest bubble — a
    /// scalar sensitivity score.
    ///
    /// # Panics
    ///
    /// Panics if the curve has fewer than two points.
    pub fn sensitivity(&self) -> f64 {
        assert!(self.points.len() >= 2, "curve needs at least two points");
        let first = self.points.first().expect("nonempty").target_ipc;
        let last = self.points.last().expect("nonempty").target_ipc;
        1.0 - last / first
    }
}

/// Co-runs `target` against bubbles at the given pressures and measures
/// its IPC each time.
///
/// Target and bubble share the platform's L2 (half each, as Bubble-Up's
/// unmanaged co-location would on a two-core node) and the DRAM channel.
///
/// # Errors
///
/// Returns a message for an empty or invalid pressure list.
pub fn bubble_profile(
    target: &Benchmark,
    pressures: &[f64],
    instructions: u64,
    seed: u64,
) -> Result<BubbleCurve, String> {
    if pressures.is_empty() {
        return Err("need at least one pressure".to_string());
    }
    let platform = PlatformConfig::asplos14();
    let mut points = Vec::with_capacity(pressures.len());
    for &p in pressures {
        let bubble = Bubble::new(p)?;
        let mut system = MulticoreSystem::new(&platform, &[0.5, 0.5], &[0.5, 0.5])
            .with_dependent_load_fractions(vec![
                target.params.dependent_fraction,
                bubble.params().dependent_fraction,
            ]);
        let reports = system.run(
            vec![
                Box::new(target.stream(seed)) as Box<dyn Iterator<Item = Op>>,
                Box::new(bubble.stream(seed)),
            ],
            instructions,
        );
        points.push(BubblePoint {
            pressure: p,
            target_ipc: reports[0].ipc(),
            target_l2_hit_rate: reports[0].l2.hit_rate(),
        });
    }
    Ok(BubbleCurve {
        workload: target.name.to_string(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::by_name;

    #[test]
    fn pressure_validation() {
        assert!(Bubble::new(-0.1).is_err());
        assert!(Bubble::new(1.1).is_err());
        assert!(Bubble::new(f64::NAN).is_err());
        assert!(Bubble::new(0.0).is_ok());
        assert!(Bubble::new(1.0).is_ok());
    }

    #[test]
    fn all_pressures_produce_valid_generators() {
        for i in 0..=10 {
            let b = Bubble::new(i as f64 / 10.0).unwrap();
            assert!(b.params().validate().is_ok(), "pressure {}", b.pressure());
            let ops: Vec<_> = b.stream(1).take(100).collect();
            assert_eq!(ops.len(), 100);
        }
    }

    #[test]
    fn pressure_scales_appetite_monotonically() {
        let mut last_stream = 0.0;
        let mut last_mem = 0.0;
        for i in 0..=5 {
            let b = Bubble::new(i as f64 / 5.0).unwrap();
            assert!(b.params().streaming_fraction >= last_stream);
            assert!(b.params().memory_fraction >= last_mem);
            last_stream = b.params().streaming_fraction;
            last_mem = b.params().memory_fraction;
        }
    }

    #[test]
    fn heavier_bubble_degrades_target() {
        let target = by_name("dedup").unwrap();
        let curve = bubble_profile(target, &[0.0, 1.0], 60_000, 7).unwrap();
        assert_eq!(curve.points.len(), 2);
        assert!(
            curve.points[1].target_ipc < curve.points[0].target_ipc,
            "{curve:?}"
        );
        assert!(curve.sensitivity() > 0.0);
    }

    #[test]
    fn memory_bound_target_is_more_sensitive_than_compute_bound() {
        // dedup saturates the memory system; a compute-bound app whose
        // accesses hit the L1 and whose rare misses overlap (low
        // dependence) barely notices the bubble. Note that *latency-bound*
        // apps (high dependence, e.g. radiosity) are also bubble-sensitive
        // through bank-conflict latency — a realistic interference channel
        // this model captures — so the insensitive comparator must be both
        // traffic-light and dependence-light.
        let compute_bound = Benchmark {
            name: "compute_bound",
            suite: crate::profiles::Suite::Parsec,
            params: WorkloadParams {
                memory_fraction: 0.05,
                hot_fraction: 0.9,
                streaming_fraction: 0.0,
                working_set_bytes: 32 * 1024,
                store_fraction: 0.1,
                dependent_fraction: 0.05,
            },
            expected_class: crate::profiles::PreferenceClass::Cache,
        };
        let sensitive = bubble_profile(by_name("dedup").unwrap(), &[0.0, 1.0], 60_000, 7)
            .unwrap()
            .sensitivity();
        let insensitive = bubble_profile(&compute_bound, &[0.0, 1.0], 60_000, 7)
            .unwrap()
            .sensitivity();
        assert!(
            sensitive > 3.0 * insensitive.max(0.001),
            "dedup {sensitive} vs compute-bound {insensitive}"
        );
    }

    #[test]
    fn empty_pressures_rejected() {
        let target = by_name("fft").unwrap();
        assert!(bubble_profile(target, &[], 1000, 1).is_err());
        assert!(bubble_profile(target, &[2.0], 1000, 1).is_err());
    }
}
