//! Synthetic memory-reference generators.
//!
//! Each workload is modeled as a parameterized instruction stream whose
//! memory behaviour reproduces, in aggregate, the locality and bandwidth
//! signature of the benchmark it stands in for (PARSEC / SPLASH-2x /
//! Phoenix; see `DESIGN.md` for the substitution argument).
//!
//! The generator mixes three access populations:
//!
//! - **hot**: a small region that lives in the L1 (register-blocked inner
//!   loops, stack);
//! - **resident**: reuse within a working set, with reuse distances drawn
//!   log-uniformly so the L2 hit rate — and therefore log-IPC — varies
//!   smoothly (approximately affinely) with the log of the allocated cache
//!   capacity, the shape Cobb-Douglas fitting expects;
//! - **streaming**: sequential blocks with no reuse, which consume pure
//!   bandwidth.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ref_sim::trace::Op;

/// Base address of the hot region.
const HOT_BASE: u64 = 0;
/// Base address of the resident (working-set) region.
const RESIDENT_BASE: u64 = 1 << 28;
/// Base address of the streaming region.
const STREAM_BASE: u64 = 1 << 32;
/// The streaming pointer wraps after this many bytes to bound addresses.
const STREAM_WRAP: u64 = 1 << 30;
/// Smallest reuse distance for resident accesses (spans the L1).
const REUSE_MIN_BYTES: u64 = 16 * 1024;

/// Parameters describing one synthetic workload.
///
/// # Examples
///
/// ```
/// use ref_workloads::generator::WorkloadParams;
///
/// let p = WorkloadParams {
///     memory_fraction: 0.25,
///     hot_fraction: 0.5,
///     streaming_fraction: 0.1,
///     working_set_bytes: 1 << 20,
///     store_fraction: 0.3,
///     dependent_fraction: 0.6,
/// };
/// assert!(p.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Fraction of instructions that access memory, in `(0, 1]`.
    pub memory_fraction: f64,
    /// Of memory accesses, the fraction hitting the hot (L1-resident)
    /// region, in `[0, 1]`.
    pub hot_fraction: f64,
    /// Of memory accesses, the fraction streaming with no reuse, in
    /// `[0, 1]`. Together with `hot_fraction` must not exceed 1; the
    /// remainder is resident traffic.
    pub streaming_fraction: f64,
    /// Size of the resident working set in bytes.
    pub working_set_bytes: u64,
    /// Fraction of memory accesses that are stores, in `[0, 1]`.
    pub store_fraction: f64,
    /// Fraction of loads whose consumers stall the pipeline until the data
    /// returns, in `[0, 1]`. High values model pointer-chasing
    /// (latency-bound) code; low values model streaming (bandwidth-bound)
    /// code whose misses overlap.
    pub dependent_fraction: f64,
}

impl WorkloadParams {
    /// Checks that the parameters are internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.memory_fraction > 0.0 && self.memory_fraction <= 1.0) {
            return Err(format!(
                "memory_fraction must be in (0, 1], got {}",
                self.memory_fraction
            ));
        }
        for (name, v) in [
            ("hot_fraction", self.hot_fraction),
            ("streaming_fraction", self.streaming_fraction),
            ("store_fraction", self.store_fraction),
            ("dependent_fraction", self.dependent_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if self.hot_fraction + self.streaming_fraction > 1.0 {
            return Err(format!(
                "hot + streaming fractions exceed 1: {} + {}",
                self.hot_fraction, self.streaming_fraction
            ));
        }
        if self.working_set_bytes < REUSE_MIN_BYTES {
            return Err(format!(
                "working set must be at least {REUSE_MIN_BYTES} bytes, got {}",
                self.working_set_bytes
            ));
        }
        Ok(())
    }

    /// The fraction of memory accesses that are resident (working-set)
    /// traffic.
    pub fn resident_fraction(&self) -> f64 {
        1.0 - self.hot_fraction - self.streaming_fraction
    }
}

/// An unbounded deterministic instruction stream for one workload.
///
/// Two generators built with the same parameters and seed produce identical
/// streams.
///
/// # Examples
///
/// ```
/// use ref_workloads::generator::{SyntheticWorkload, WorkloadParams};
///
/// let params = WorkloadParams {
///     memory_fraction: 0.3,
///     hot_fraction: 0.4,
///     streaming_fraction: 0.2,
///     working_set_bytes: 1 << 20,
///     store_fraction: 0.25,
///     dependent_fraction: 0.6,
/// };
/// let ops: Vec<_> = SyntheticWorkload::new(params, 42).unwrap().take(100).collect();
/// assert_eq!(ops.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    params: WorkloadParams,
    rng: ChaCha8Rng,
    stream_cursor: u64,
    hot_bytes: u64,
}

impl SyntheticWorkload {
    /// Creates a generator from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `params` are inconsistent (see
    /// [`WorkloadParams::validate`]).
    pub fn new(params: WorkloadParams, seed: u64) -> Result<SyntheticWorkload, String> {
        params.validate()?;
        Ok(SyntheticWorkload {
            params,
            rng: ChaCha8Rng::seed_from_u64(seed),
            stream_cursor: 0,
            hot_bytes: 8 * 1024,
        })
    }

    /// The parameters this generator was built from.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    fn next_address(&mut self) -> u64 {
        let p: f64 = self.rng.gen();
        if p < self.params.hot_fraction {
            HOT_BASE + self.rng.gen_range(0..self.hot_bytes / 64) * 64
        } else if p < self.params.hot_fraction + self.params.streaming_fraction {
            let a = STREAM_BASE + self.stream_cursor;
            self.stream_cursor = (self.stream_cursor + 64) % STREAM_WRAP;
            a
        } else {
            // Resident: reuse distance log-uniform in
            // [working_set / 8, working_set] (floored at REUSE_MIN_BYTES),
            // then a uniform block within that radius. Concentrating the
            // radii near the working set keeps the L2 hit rate — and hence
            // log IPC — steeply and smoothly responsive to the log of the
            // allocated capacity, which linearizes the Cobb-Douglas fit.
            let reuse_min = (self.params.working_set_bytes / 8).max(REUSE_MIN_BYTES) as f64;
            let span = (self.params.working_set_bytes as f64 / reuse_min).ln();
            let radius = (reuse_min * (self.rng.gen::<f64>() * span).exp()) as u64;
            let radius_blocks = (radius / 64).max(1);
            RESIDENT_BASE + self.rng.gen_range(0..radius_blocks) * 64
        }
    }
}

impl Iterator for SyntheticWorkload {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.rng.gen::<f64>() >= self.params.memory_fraction {
            return Some(Op::Compute);
        }
        let addr = self.next_address();
        if self.rng.gen::<f64>() < self.params.store_fraction {
            Some(Op::Store(addr))
        } else {
            Some(Op::Load(addr))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams {
            memory_fraction: 0.3,
            hot_fraction: 0.4,
            streaming_fraction: 0.2,
            working_set_bytes: 1 << 20,
            store_fraction: 0.25,
            dependent_fraction: 0.6,
        }
    }

    #[test]
    fn validation_catches_bad_fractions() {
        let mut p = params();
        p.memory_fraction = 0.0;
        assert!(p.validate().is_err());
        let mut p = params();
        p.hot_fraction = 0.8;
        p.streaming_fraction = 0.5;
        assert!(p.validate().is_err());
        let mut p = params();
        p.store_fraction = 1.5;
        assert!(p.validate().is_err());
        let mut p = params();
        p.dependent_fraction = -0.1;
        assert!(p.validate().is_err());
        let mut p = params();
        p.working_set_bytes = 1024;
        assert!(p.validate().is_err());
        assert!(params().validate().is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = SyntheticWorkload::new(params(), 7)
            .unwrap()
            .take(500)
            .collect();
        let b: Vec<_> = SyntheticWorkload::new(params(), 7)
            .unwrap()
            .take(500)
            .collect();
        assert_eq!(a, b);
        let c: Vec<_> = SyntheticWorkload::new(params(), 8)
            .unwrap()
            .take(500)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn memory_fraction_is_respected() {
        let n = 50_000;
        let mem = SyntheticWorkload::new(params(), 1)
            .unwrap()
            .take(n)
            .filter(|op| op.is_memory())
            .count();
        let frac = mem as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "memory fraction {frac}");
    }

    #[test]
    fn store_fraction_is_respected() {
        let n = 50_000;
        let ops: Vec<_> = SyntheticWorkload::new(params(), 1)
            .unwrap()
            .take(n)
            .collect();
        let mem = ops.iter().filter(|op| op.is_memory()).count();
        let stores = ops.iter().filter(|op| matches!(op, Op::Store(_))).count();
        let frac = stores as f64 / mem as f64;
        assert!((frac - 0.25).abs() < 0.03, "store fraction {frac}");
    }

    #[test]
    fn address_populations_land_in_their_regions() {
        let ops: Vec<_> = SyntheticWorkload::new(params(), 3)
            .unwrap()
            .take(100_000)
            .collect();
        let addrs: Vec<u64> = ops.iter().filter_map(|op| op.address()).collect();
        let hot = addrs.iter().filter(|&&a| a < RESIDENT_BASE).count();
        let resident = addrs
            .iter()
            .filter(|&&a| (RESIDENT_BASE..STREAM_BASE).contains(&a))
            .count();
        let streaming = addrs.iter().filter(|&&a| a >= STREAM_BASE).count();
        let total = addrs.len() as f64;
        assert!((hot as f64 / total - 0.4).abs() < 0.02);
        assert!((resident as f64 / total - 0.4).abs() < 0.02);
        assert!((streaming as f64 / total - 0.2).abs() < 0.02);
    }

    #[test]
    fn resident_addresses_stay_in_working_set() {
        let p = params();
        let max = RESIDENT_BASE + p.working_set_bytes;
        let ok = SyntheticWorkload::new(p, 5)
            .unwrap()
            .take(100_000)
            .filter_map(|op| op.address())
            .filter(|a| (RESIDENT_BASE..STREAM_BASE).contains(a))
            .all(|a| a < max);
        assert!(ok);
    }

    #[test]
    fn streaming_advances_sequentially() {
        let mut p = params();
        p.hot_fraction = 0.0;
        p.streaming_fraction = 1.0;
        p.memory_fraction = 1.0;
        let addrs: Vec<u64> = SyntheticWorkload::new(p, 9)
            .unwrap()
            .take(100)
            .filter_map(|op| op.address())
            .collect();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(*a, STREAM_BASE + i as u64 * 64);
        }
    }

    #[test]
    fn resident_fraction_derives() {
        assert!((params().resident_fraction() - 0.4).abs() < 1e-12);
    }
}
