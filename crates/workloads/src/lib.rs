//! # ref-workloads
//!
//! The synthetic benchmark suite of the REF (Resource Elasticity Fairness)
//! reproduction — the stand-in for the PARSEC 3.0, SPLASH-2x and Phoenix
//! MapReduce applications the paper profiles.
//!
//! - [`generator`] — parameterized synthetic memory-reference streams
//!   (hot / resident / streaming populations).
//! - [`profiles`] — the 28 named benchmarks with parameters tuned to
//!   reproduce the paper's Figure-9 elasticity spectrum and C/M classes.
//! - [`suite`] — Table 2's multiprogrammed mixes WD1–WD10.
//! - [`profiler`] — the 25-configuration (5 cache sizes x 5 bandwidths)
//!   profiling sweep of §5.1.
//! - [`bubble`] — Bubble-Up-style tunable-pressure co-runner profiling
//!   (§4.4's first offline alternative).
//! - [`memo`] — a process-wide simulation memo that deduplicates
//!   identical grid-point simulations across figures and mixes.
//!
//! # Examples
//!
//! Profile `dedup` on the Table-1 grid:
//!
//! ```
//! use ref_workloads::profiler::{profile, ProfilerOptions};
//! use ref_workloads::profiles::by_name;
//!
//! let mut opts = ProfilerOptions::default();
//! opts.instructions = 5_000; // keep the doctest fast
//! let grid = profile(by_name("dedup").unwrap(), &opts);
//! assert_eq!(grid.points.len(), 25);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bubble;
pub mod generator;
pub mod memo;
pub mod profiler;
pub mod profiles;
pub mod suite;

pub use bubble::{bubble_profile, Bubble, BubbleCurve, BubblePoint};
pub use generator::{SyntheticWorkload, WorkloadParams};
pub use memo::{MemoStats, SimKey};
pub use profiler::{profile, ProfileGrid, ProfilePoint, ProfilerOptions};
pub use profiles::{by_name, Benchmark, PreferenceClass, BENCHMARKS};
pub use suite::{all_mixes, eight_core_mixes, four_core_mixes, WorkloadMix};
