//! Process-wide simulation memo: repeated sweeps skip identical sims.
//!
//! The profiling sweep is a pure function: the IPC measured at one grid
//! point is fully determined by the benchmark (name, generator
//! parameters), the stream seed, the warmup/measure instruction budgets,
//! and the **complete** [`PlatformConfig`] (the allocation under test is
//! expressed through the platform's L2 capacity and DRAM bandwidth, and
//! the dependence structure through `core.dependent_load_fraction`).
//! Experiment binaries re-profile the same benchmarks across figures and
//! mixes; the memo turns every repeat into a hash lookup.
//!
//! Why the key must include the full `PlatformConfig` and not just the
//! `(cache, bandwidth)` allocation pair: ablation binaries sweep page
//! policy, prefetcher and grid shape on the *same* benchmarks, and the
//! market overrides `dependent_load_fraction` per agent. Keying on the
//! allocation alone would alias those runs and silently serve stale IPC
//! from a different machine model. Every field is captured bit-exactly
//! (`f64::to_bits`), so two configurations collide only when the
//! simulated machine is genuinely identical — in which case the sim
//! output is too (the simulator is deterministic).
//!
//! The memo is shared across threads behind a mutex; workers only touch
//! it twice per grid point (lookup, insert), which is noise next to a
//! multi-millisecond simulation. Entries are one `f64` each, so even a
//! full 28-benchmark x 25-point x several-figure session stays in the
//! kilobytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use ref_sim::config::PlatformConfig;

use crate::generator::WorkloadParams;

/// Exact identity of one simulation run (see the module docs for why
/// every field participates).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// Benchmark name (owned: the key outlives the profile call).
    pub workload: String,
    /// Generator parameters, bit-exact.
    params: [u64; 6],
    /// Stream seed.
    seed: u64,
    /// Warmup instructions actually replayed.
    warmup: u64,
    /// Measured instructions.
    instructions: u64,
    /// The complete platform, bit-exact.
    platform: [u64; 21],
}

impl SimKey {
    /// Builds the key for one profiling run.
    pub fn new(
        workload: &str,
        params: &WorkloadParams,
        seed: u64,
        warmup: u64,
        instructions: u64,
        platform: &PlatformConfig,
    ) -> SimKey {
        SimKey {
            workload: workload.to_string(),
            params: [
                params.memory_fraction.to_bits(),
                params.hot_fraction.to_bits(),
                params.streaming_fraction.to_bits(),
                params.working_set_bytes,
                params.store_fraction.to_bits(),
                params.dependent_fraction.to_bits(),
            ],
            seed,
            warmup,
            instructions,
            platform: platform_bits(platform),
        }
    }
}

/// Every field of the platform as raw bits, in declaration order.
fn platform_bits(p: &PlatformConfig) -> [u64; 21] {
    [
        p.core.clock_hz.to_bits(),
        u64::from(p.core.issue_width),
        p.core.mshr_entries as u64,
        p.core.dependent_load_fraction.to_bits(),
        u64::from(p.core.next_line_prefetch),
        p.l1.size.bytes(),
        p.l1.ways as u64,
        p.l1.block_bytes,
        p.l1.latency_cycles,
        p.l2.size.bytes(),
        p.l2.ways as u64,
        p.l2.block_bytes,
        p.l2.latency_cycles,
        p.dram.bandwidth.bytes_per_sec().to_bits(),
        p.dram.ranks as u64,
        p.dram.banks_per_rank as u64,
        p.dram.access_latency_cycles,
        p.dram.bank_occupancy_cycles,
        p.dram.page_policy as u64,
        p.dram.row_hit_latency_cycles,
        p.dram.row_bytes,
    ]
}

/// Hit/miss counters for the memo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
}

impl MemoStats {
    /// Hit rate in `[0, 1]`; `0.0` with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

static MEMO: OnceLock<Mutex<HashMap<SimKey, f64>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn table() -> &'static Mutex<HashMap<SimKey, f64>> {
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the memoised IPC for `key`, or computes it with `sim`,
/// records it, and returns it. `sim` runs outside the lock so concurrent
/// grid points never serialize on the memo.
pub fn ipc_or_insert_with<F: FnOnce() -> f64>(key: SimKey, sim: F) -> f64 {
    if let Some(&ipc) = table().lock().expect("sim memo poisoned").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return ipc;
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let ipc = sim();
    table().lock().expect("sim memo poisoned").insert(key, ipc);
    ipc
}

/// Accumulated hit/miss counters.
pub fn stats() -> MemoStats {
    MemoStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Number of memoised grid points.
pub fn len() -> usize {
    table().lock().expect("sim memo poisoned").len()
}

/// Empties the memo and zeroes the counters (used by benchmarks that
/// need cold-cache timings).
pub fn clear() {
    table().lock().expect("sim memo poisoned").clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ref_sim::config::{Bandwidth, CacheSize};

    fn key(seed: u64, platform: &PlatformConfig) -> SimKey {
        let params = crate::profiles::by_name("fft").unwrap().params;
        SimKey::new("fft", &params, seed, 100, 200, platform)
    }

    #[test]
    fn identical_runs_share_an_entry() {
        let p = PlatformConfig::asplos14();
        let a = key(1, &p);
        let b = key(1, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn platform_fields_distinguish_keys() {
        let p = PlatformConfig::asplos14();
        assert_ne!(key(1, &p), key(2, &p));
        assert_ne!(
            key(1, &p),
            key(1, &p.with_l2_size(CacheSize::from_kib(128)))
        );
        assert_ne!(
            key(1, &p),
            key(1, &p.with_bandwidth(Bandwidth::from_gb_per_sec(0.8)))
        );
        assert_ne!(key(1, &p), key(1, &p.with_next_line_prefetch(true)));
        let mut q = p;
        q.core.dependent_load_fraction = 0.111;
        assert_ne!(key(1, &p), key(1, &q));
    }

    #[test]
    fn memo_round_trips() {
        let p = PlatformConfig::asplos14();
        let k = key(0xDEAD, &p);
        let first = ipc_or_insert_with(k.clone(), || 1.25);
        let second = ipc_or_insert_with(k, || unreachable!("must be memoised"));
        assert_eq!(first.to_bits(), second.to_bits());
        assert!(stats().hits >= 1);
    }

    #[test]
    fn hit_rate_is_safe_on_empty() {
        assert_eq!(MemoStats::default().hit_rate(), 0.0);
    }
}
