//! The 25-configuration profiling sweep (§5.1 of the paper).
//!
//! Profiles a workload's IPC over the cross product of L2 capacities and
//! memory bandwidths from Table 1 (or a custom grid for the ablation
//! studies), producing the data from which `ref-core` fits Cobb-Douglas
//! utilities.

use ref_sim::config::{Bandwidth, CacheSize, PlatformConfig};
use ref_sim::system::SingleCoreSystem;

use crate::memo::{self, SimKey};
use crate::profiles::Benchmark;

/// IPC measured at one (cache size, bandwidth) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilePoint {
    /// Allocated L2 capacity.
    pub cache: CacheSize,
    /// Allocated memory bandwidth.
    pub bandwidth: Bandwidth,
    /// Measured instructions per cycle.
    pub ipc: f64,
}

/// A workload's full profile over a configuration grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileGrid {
    /// Workload name.
    pub workload: String,
    /// One point per simulated configuration, in row-major
    /// (bandwidth-major) order.
    pub points: Vec<ProfilePoint>,
}

impl ProfileGrid {
    /// The IPC measured at the largest cache and highest bandwidth in the
    /// grid (the "whole machine" reference used for weighted utility).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty.
    pub fn peak_ipc(&self) -> f64 {
        self.points
            .iter()
            .max_by(|a, b| {
                let ka = (a.cache.bytes(), a.bandwidth.bytes_per_sec());
                let kb = (b.cache.bytes(), b.bandwidth.bytes_per_sec());
                ka.partial_cmp(&kb).expect("finite bandwidths")
            })
            .expect("profile grid must not be empty")
            .ipc
    }

    /// Looks up the measured IPC at an exact grid configuration.
    pub fn ipc_at(&self, cache: CacheSize, bandwidth: Bandwidth) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.cache == cache && p.bandwidth == bandwidth)
            .map(|p| p.ipc)
    }
}

/// Options controlling a profiling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilerOptions {
    /// Warmup instructions per configuration (caches populate, timing
    /// discarded).
    pub warmup_instructions: u64,
    /// Measured instructions per configuration.
    pub instructions: u64,
    /// Workload seed (streams are deterministic per seed).
    pub seed: u64,
    /// Cache capacities to sweep.
    pub cache_sizes: Vec<CacheSize>,
    /// Bandwidths to sweep.
    pub bandwidths: Vec<Bandwidth>,
    /// Worker threads for the sweep: `None` uses the global `ref-pool`
    /// width ([`ref_pool::threads`]), `Some(1)` forces a serial sweep.
    /// Results are bit-identical at every width — each grid point is an
    /// independent simulation placed by index.
    pub threads: Option<usize>,
    /// Consult the process-wide simulation memo before simulating a grid
    /// point. Disable for timing runs that need cold-path measurements.
    pub use_memo: bool,
}

impl Default for ProfilerOptions {
    /// The paper's 5 x 5 Table-1 grid at a profile length that keeps the
    /// full 28-benchmark sweep interactive.
    fn default() -> ProfilerOptions {
        ProfilerOptions {
            warmup_instructions: 100_000,
            instructions: 200_000,
            seed: 0xA5F0_5EED,
            cache_sizes: PlatformConfig::l2_sweep().to_vec(),
            bandwidths: PlatformConfig::bandwidth_sweep().to_vec(),
            threads: None,
            use_memo: true,
        }
    }
}

/// Profiles one benchmark over the configured grid.
///
/// # Examples
///
/// ```
/// use ref_workloads::profiler::{profile, ProfilerOptions};
/// use ref_workloads::profiles::by_name;
///
/// let mut opts = ProfilerOptions::default();
/// opts.instructions = 5_000; // keep the doctest fast
/// let grid = profile(by_name("dedup").unwrap(), &opts);
/// assert_eq!(grid.points.len(), 25);
/// assert!(grid.peak_ipc() > 0.0);
/// ```
pub fn profile(benchmark: &Benchmark, opts: &ProfilerOptions) -> ProfileGrid {
    let base = PlatformConfig::asplos14();
    // Warm the caches for a fixed number of *memory accesses*:
    // compute-heavy workloads touch memory rarely, so a fixed
    // instruction budget would leave their working sets cold and
    // bias the fit toward cold-miss bandwidth noise.
    let warmup = (opts.warmup_instructions as f64
        * (0.30 / benchmark.params.memory_fraction).max(1.0)) as u64;
    let n_cache = opts.cache_sizes.len();
    let simulate = |k: usize| {
        // Bandwidth-major flat index: matches the historical nested-loop
        // emission order, so a grid built at any thread count is
        // byte-identical to the serial one.
        let bandwidth = opts.bandwidths[k / n_cache];
        let cache = opts.cache_sizes[k % n_cache];
        let mut platform = base.with_l2_size(cache).with_bandwidth(bandwidth);
        // Dependence structure is a property of the workload's code,
        // not the platform.
        platform.core.dependent_load_fraction = benchmark.params.dependent_fraction;
        let run = || {
            let mut system = SingleCoreSystem::new(&platform);
            system
                .run_with_warmup(benchmark.stream(opts.seed), warmup, opts.instructions)
                .ipc()
        };
        let ipc = if opts.use_memo {
            let key = SimKey::new(
                benchmark.name,
                &benchmark.params,
                opts.seed,
                warmup,
                opts.instructions,
                &platform,
            );
            memo::ipc_or_insert_with(key, run)
        } else {
            run()
        };
        ProfilePoint {
            cache,
            bandwidth,
            ipc,
        }
    };
    let len = n_cache * opts.bandwidths.len();
    let points = match opts.threads {
        Some(n) => ref_pool::par_map_threads(len, n, simulate),
        None => ref_pool::par_map(len, simulate),
    };
    ProfileGrid {
        workload: benchmark.name.to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::by_name;

    fn quick_opts() -> ProfilerOptions {
        ProfilerOptions {
            warmup_instructions: 60_000,
            instructions: 60_000,
            ..ProfilerOptions::default()
        }
    }

    #[test]
    fn grid_covers_25_configurations() {
        let grid = profile(by_name("dedup").unwrap(), &quick_opts());
        assert_eq!(grid.points.len(), 25);
        assert!(grid.points.iter().all(|p| p.ipc > 0.0 && p.ipc <= 4.0));
    }

    #[test]
    fn peak_is_best_corner() {
        let grid = profile(by_name("histogram").unwrap(), &quick_opts());
        let corner = grid
            .ipc_at(CacheSize::from_mib(2), PlatformConfig::bandwidth_sweep()[4])
            .unwrap();
        assert_eq!(grid.peak_ipc(), corner);
    }

    #[test]
    fn cache_heavy_workload_gains_from_cache() {
        let grid = profile(by_name("raytrace").unwrap(), &quick_opts());
        let bw = PlatformConfig::bandwidth_sweep()[2];
        let small = grid.ipc_at(CacheSize::from_kib(128), bw).unwrap();
        let large = grid.ipc_at(CacheSize::from_mib(2), bw).unwrap();
        assert!(large > 1.2 * small, "large {large} small {small}");
    }

    #[test]
    fn bandwidth_heavy_workload_gains_from_bandwidth() {
        let grid = profile(by_name("ocean_cp").unwrap(), &quick_opts());
        let cache = CacheSize::from_kib(512);
        let slow = grid
            .ipc_at(cache, PlatformConfig::bandwidth_sweep()[0])
            .unwrap();
        let fast = grid
            .ipc_at(cache, PlatformConfig::bandwidth_sweep()[4])
            .unwrap();
        assert!(fast > 1.5 * slow, "fast {fast} slow {slow}");
    }

    #[test]
    fn profiling_is_deterministic() {
        let a = profile(by_name("fft").unwrap(), &quick_opts());
        let b = profile(by_name("fft").unwrap(), &quick_opts());
        assert_eq!(a, b);
    }

    #[test]
    fn custom_grid_sizes_respected() {
        let opts = ProfilerOptions {
            warmup_instructions: 0,
            instructions: 10_000,
            cache_sizes: vec![CacheSize::from_kib(128), CacheSize::from_mib(2)],
            bandwidths: vec![PlatformConfig::bandwidth_sweep()[0]],
            ..ProfilerOptions::default()
        };
        let grid = profile(by_name("fft").unwrap(), &opts);
        assert_eq!(grid.points.len(), 2);
        assert!(grid
            .ipc_at(CacheSize::from_mib(2), opts.bandwidths[0])
            .is_some());
    }
}
