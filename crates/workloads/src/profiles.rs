//! The 28 named benchmark profiles.
//!
//! Each entry stands in for one benchmark from the paper's PARSEC,
//! SPLASH-2x and Phoenix suites. Parameters were chosen so the *fitted
//! elasticities* reproduce the paper's Figure 9 spectrum: `raytrace` at the
//! cache-elastic end, `ocean_cp` at the bandwidth-elastic end, `radiosity`
//! nearly flat (negligible IPC variance, hence the paper's low R-squared),
//! and the C/M classification of Table 2's workloads preserved.

use crate::generator::{SyntheticWorkload, WorkloadParams};

/// Source suite of a benchmark, as named in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// PARSEC 3.0.
    Parsec,
    /// SPLASH-2x.
    Splash2x,
    /// Phoenix MapReduce.
    Phoenix,
}

/// Resource preference class from the paper's §5.3: `C` demands cache
/// capacity (`alpha_cache > 0.5`), `M` demands memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreferenceClass {
    /// Cache-capacity preferring.
    Cache,
    /// Memory-bandwidth preferring.
    Memory,
}

/// One named benchmark profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Benchmark {
    /// Benchmark name as it appears in the paper.
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Generator parameters.
    pub params: WorkloadParams,
    /// The class the paper assigns (our fitted elasticities must agree).
    pub expected_class: PreferenceClass,
}

impl Benchmark {
    /// Builds the deterministic instruction stream for this benchmark.
    ///
    /// The seed is mixed with the benchmark name so distinct benchmarks
    /// never share a stream even with equal seeds.
    ///
    /// # Panics
    ///
    /// Never panics: all table entries validate by construction (covered by
    /// tests).
    pub fn stream(&self, seed: u64) -> SyntheticWorkload {
        let mixed = seed ^ fnv1a(self.name);
        SyntheticWorkload::new(self.params, mixed).expect("table parameters are valid")
    }
}

/// FNV-1a hash for stable name-to-seed mixing.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

const fn params(
    memory_fraction: f64,
    hot_fraction: f64,
    streaming_fraction: f64,
    working_set_bytes: u64,
    store_fraction: f64,
    dependent_fraction: f64,
) -> WorkloadParams {
    WorkloadParams {
        memory_fraction,
        hot_fraction,
        streaming_fraction,
        working_set_bytes,
        store_fraction,
        dependent_fraction,
    }
}

/// The full benchmark table, ordered from most cache-elastic to most
/// bandwidth-elastic (the paper's Figure 9 spectrum).
pub const BENCHMARKS: [Benchmark; 28] = [
    Benchmark {
        name: "raytrace",
        suite: Suite::Parsec,
        params: params(0.30, 0.30, 0.00, 2 * MIB, 0.10, 0.90),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "water_spatial",
        suite: Suite::Splash2x,
        params: params(0.25, 0.35, 0.02, 2 * MIB, 0.20, 0.85),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "histogram",
        suite: Suite::Phoenix,
        params: params(0.35, 0.30, 0.03, 2 * MIB, 0.15, 0.85),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "lu_ncb",
        suite: Suite::Splash2x,
        params: params(0.30, 0.30, 0.05, 2 * MIB, 0.30, 0.85),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "linear_regression",
        suite: Suite::Phoenix,
        params: params(0.45, 0.30, 0.05, 2 * MIB, 0.10, 0.85),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "freqmine",
        suite: Suite::Parsec,
        params: params(0.06, 0.45, 0.02, 3 * MIB / 2, 0.20, 0.85),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "water_nsquared",
        suite: Suite::Splash2x,
        params: params(0.25, 0.35, 0.05, 2 * MIB, 0.18, 0.80),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "bodytrack",
        suite: Suite::Parsec,
        params: params(0.28, 0.35, 0.06, 2 * MIB, 0.18, 0.80),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "radiosity",
        suite: Suite::Splash2x,
        params: params(0.06, 0.70, 0.00, 768 * KIB, 0.20, 0.85),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "word_count",
        suite: Suite::Phoenix,
        params: params(0.30, 0.35, 0.10, 3 * MIB / 2, 0.15, 0.80),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "cholesky",
        suite: Suite::Splash2x,
        params: params(0.28, 0.35, 0.08, 3 * MIB / 2, 0.20, 0.80),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "volrend",
        suite: Suite::Splash2x,
        params: params(0.22, 0.40, 0.08, MIB, 0.10, 0.80),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "swaptions",
        suite: Suite::Parsec,
        params: params(0.10, 0.60, 0.01, MIB, 0.10, 0.85),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "fmm",
        suite: Suite::Splash2x,
        params: params(0.25, 0.35, 0.08, 3 * MIB / 2, 0.18, 0.76),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "barnes",
        suite: Suite::Splash2x,
        params: params(0.35, 0.28, 0.08, 3 * MIB / 2, 0.18, 0.78),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "ferret",
        suite: Suite::Parsec,
        params: params(0.30, 0.30, 0.11, MIB, 0.18, 0.76),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "x264",
        suite: Suite::Parsec,
        params: params(0.28, 0.35, 0.10, MIB, 0.20, 0.72),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "blackscholes",
        suite: Suite::Parsec,
        params: params(0.12, 0.55, 0.02, MIB, 0.10, 0.80),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "fft",
        suite: Suite::Splash2x,
        params: params(0.30, 0.28, 0.13, MIB, 0.20, 0.68),
        expected_class: PreferenceClass::Cache,
    },
    Benchmark {
        name: "streamcluster",
        suite: Suite::Parsec,
        params: params(0.33, 0.20, 0.55, 512 * KIB, 0.10, 0.15),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "canneal",
        suite: Suite::Parsec,
        params: params(0.04, 0.30, 0.10, 256 * KIB, 0.10, 0.25),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "rtview",
        suite: Suite::Parsec,
        params: params(0.30, 0.25, 0.45, 512 * KIB, 0.15, 0.20),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "lu_cb",
        suite: Suite::Splash2x,
        params: params(0.32, 0.25, 0.45, 512 * KIB, 0.30, 0.20),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "fluidanimate",
        suite: Suite::Parsec,
        params: params(0.30, 0.20, 0.50, 512 * KIB, 0.25, 0.15),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "facesim",
        suite: Suite::Parsec,
        params: params(0.32, 0.20, 0.55, 512 * KIB, 0.25, 0.15),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "dedup",
        suite: Suite::Parsec,
        params: params(0.36, 0.15, 0.60, 256 * KIB, 0.30, 0.12),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "string_match",
        suite: Suite::Phoenix,
        params: params(0.35, 0.15, 0.65, 256 * KIB, 0.10, 0.10),
        expected_class: PreferenceClass::Memory,
    },
    Benchmark {
        name: "ocean_cp",
        suite: Suite::Splash2x,
        params: params(0.38, 0.10, 0.70, 256 * KIB, 0.30, 0.10),
        expected_class: PreferenceClass::Memory,
    },
];

/// Looks up a benchmark by its paper name.
///
/// # Examples
///
/// ```
/// use ref_workloads::profiles::{by_name, PreferenceClass};
///
/// let dedup = by_name("dedup").unwrap();
/// assert_eq!(dedup.expected_class, PreferenceClass::Memory);
/// assert!(by_name("doom") .is_none());
/// ```
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_parameters_validate() {
        for b in &BENCHMARKS {
            assert!(
                b.params.validate().is_ok(),
                "{} has invalid parameters: {:?}",
                b.name,
                b.params.validate()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = BENCHMARKS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BENCHMARKS.len());
    }

    #[test]
    fn class_counts_match_paper_spectrum() {
        let cache = BENCHMARKS
            .iter()
            .filter(|b| b.expected_class == PreferenceClass::Cache)
            .count();
        assert_eq!(cache, 19);
        assert_eq!(BENCHMARKS.len() - cache, 9);
    }

    #[test]
    fn paper_named_examples_have_expected_classes() {
        for (name, class) in [
            ("histogram", PreferenceClass::Cache),
            ("barnes", PreferenceClass::Cache),
            ("freqmine", PreferenceClass::Cache),
            ("linear_regression", PreferenceClass::Cache),
            ("raytrace", PreferenceClass::Cache),
            ("dedup", PreferenceClass::Memory),
            ("canneal", PreferenceClass::Memory),
            ("streamcluster", PreferenceClass::Memory),
            ("facesim", PreferenceClass::Memory),
            ("fluidanimate", PreferenceClass::Memory),
        ] {
            assert_eq!(by_name(name).unwrap().expected_class, class, "{name}");
        }
    }

    #[test]
    fn memory_class_streams_more() {
        // Aggregate streaming appetite must be higher in the M group.
        let avg = |class: PreferenceClass| {
            let v: Vec<f64> = BENCHMARKS
                .iter()
                .filter(|b| b.expected_class == class)
                .map(|b| b.params.streaming_fraction)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(PreferenceClass::Memory) > 3.0 * avg(PreferenceClass::Cache));
    }

    #[test]
    fn streams_differ_across_benchmarks_with_same_seed() {
        let a: Vec<_> = by_name("dedup").unwrap().stream(1).take(200).collect();
        let b: Vec<_> = by_name("facesim").unwrap().stream(1).take(200).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_is_case_sensitive_exact() {
        assert!(by_name("Dedup").is_none());
        assert!(by_name("dedup").is_some());
    }
}
