//! Table 2 of the paper: the ten multiprogrammed workload mixes.
//!
//! WD1–WD5 are four-application mixes evaluated on the 4-core system
//! (Fig. 13); WD6–WD10 are eight-application mixes for the 8-core system
//! (Fig. 14). Mix membership follows Table 2 verbatim, including repeated
//! entries such as `word_count (2)` in WD8.

use crate::profiles::{by_name, Benchmark, PreferenceClass};

/// One multiprogrammed mix from Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    /// Mix identifier, e.g. `"WD1"`.
    pub id: &'static str,
    /// Benchmark names in the mix (repeats allowed, as in the paper).
    pub members: Vec<&'static str>,
    /// The paper's published C/M annotation for the mix, e.g. `"4C"`.
    pub paper_annotation: &'static str,
}

impl WorkloadMix {
    /// Resolves member names to benchmark profiles.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in mixes; membership is checked by tests.
    pub fn benchmarks(&self) -> Vec<&'static Benchmark> {
        self.members
            .iter()
            .map(|n| by_name(n).expect("mix members exist in the benchmark table"))
            .collect()
    }

    /// Number of applications (equals the core count of the evaluation).
    pub fn num_agents(&self) -> usize {
        self.members.len()
    }

    /// Counts `(cache_preferring, memory_preferring)` members using our
    /// benchmark classification.
    pub fn class_counts(&self) -> (usize, usize) {
        let c = self
            .benchmarks()
            .iter()
            .filter(|b| b.expected_class == PreferenceClass::Cache)
            .count();
        (c, self.num_agents() - c)
    }
}

/// The five 4-core mixes (Fig. 13).
///
/// # Examples
///
/// ```
/// let mixes = ref_workloads::suite::four_core_mixes();
/// assert_eq!(mixes.len(), 5);
/// assert!(mixes.iter().all(|m| m.num_agents() == 4));
/// ```
pub fn four_core_mixes() -> Vec<WorkloadMix> {
    vec![
        WorkloadMix {
            id: "WD1",
            members: vec![
                "histogram",
                "linear_regression",
                "water_nsquared",
                "bodytrack",
            ],
            paper_annotation: "4C",
        },
        WorkloadMix {
            id: "WD2",
            members: vec!["radiosity", "fmm", "facesim", "string_match"],
            paper_annotation: "2C-2M",
        },
        WorkloadMix {
            id: "WD3",
            members: vec!["lu_cb", "fluidanimate", "facesim", "dedup"],
            paper_annotation: "4M",
        },
        WorkloadMix {
            id: "WD4",
            members: vec!["fft", "streamcluster", "canneal", "word_count"],
            paper_annotation: "3C-1M",
        },
        WorkloadMix {
            id: "WD5",
            members: vec!["streamcluster", "facesim", "dedup", "string_match"],
            paper_annotation: "1C-3M",
        },
    ]
}

/// The five 8-core mixes (Fig. 14).
///
/// # Examples
///
/// ```
/// let mixes = ref_workloads::suite::eight_core_mixes();
/// assert_eq!(mixes.len(), 5);
/// assert!(mixes.iter().all(|m| m.num_agents() == 8));
/// ```
pub fn eight_core_mixes() -> Vec<WorkloadMix> {
    vec![
        WorkloadMix {
            id: "WD6",
            members: vec![
                "histogram",
                "linear_regression",
                "water_nsquared",
                "bodytrack",
                "freqmine",
                "word_count",
                "x264",
                "dedup",
            ],
            paper_annotation: "7C-1M",
        },
        WorkloadMix {
            id: "WD7",
            members: vec![
                "histogram",
                "canneal",
                "rtview",
                "bodytrack",
                "radiosity",
                "word_count",
                "linear_regression",
                "water_nsquared",
            ],
            paper_annotation: "6C-2M",
        },
        WorkloadMix {
            id: "WD8",
            members: vec![
                "radiosity",
                "word_count",
                "word_count",
                "canneal",
                "rtview",
                "freqmine",
                "x264",
                "dedup",
            ],
            paper_annotation: "5C-3M",
        },
        WorkloadMix {
            id: "WD9",
            members: vec![
                "radiosity",
                "radiosity",
                "word_count",
                "canneal",
                "rtview",
                "fmm",
                "facesim",
                "string_match",
            ],
            paper_annotation: "4C-4M",
        },
        WorkloadMix {
            id: "WD10",
            members: vec![
                "water_nsquared",
                "barnes",
                "ferret",
                "lu_cb",
                "lu_cb",
                "fluidanimate",
                "facesim",
                "dedup",
            ],
            paper_annotation: "3C-5M",
        },
    ]
}

/// All ten mixes of Table 2.
pub fn all_mixes() -> Vec<WorkloadMix> {
    let mut v = four_core_mixes();
    v.extend(eight_core_mixes());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_members_resolve() {
        for mix in all_mixes() {
            assert_eq!(mix.benchmarks().len(), mix.num_agents(), "{}", mix.id);
        }
    }

    #[test]
    fn agent_counts_match_core_counts() {
        for mix in four_core_mixes() {
            assert_eq!(mix.num_agents(), 4, "{}", mix.id);
        }
        for mix in eight_core_mixes() {
            assert_eq!(mix.num_agents(), 8, "{}", mix.id);
        }
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let ids: Vec<&str> = all_mixes().iter().map(|m| m.id).collect();
        assert_eq!(
            ids,
            vec!["WD1", "WD2", "WD3", "WD4", "WD5", "WD6", "WD7", "WD8", "WD9", "WD10"]
        );
    }

    #[test]
    fn pure_mixes_classify_cleanly() {
        // WD1 is all cache-preferring, WD3 all memory-preferring.
        let mixes = four_core_mixes();
        assert_eq!(mixes[0].class_counts(), (4, 0));
        assert_eq!(mixes[2].class_counts(), (0, 4));
    }

    #[test]
    fn class_counts_close_to_paper_annotation() {
        // The paper's WD4/WD5 annotations disagree with its own §5.3
        // classification of canneal and streamcluster as M (documented in
        // EXPERIMENTS.md); allow one workload of slack there and exact
        // agreement everywhere else.
        for mix in all_mixes() {
            let (c, _m) = mix.class_counts();
            // Annotations look like "4C", "4M", "3C-1M": the C count is the
            // number before 'C' when present, otherwise zero.
            let annotated_c: usize = match mix.paper_annotation.find('C') {
                Some(pos) => mix.paper_annotation[..pos].parse().unwrap(),
                None => 0,
            };
            let slack = if mix.id == "WD4" || mix.id == "WD5" {
                1
            } else {
                0
            };
            assert!(
                (c as i64 - annotated_c as i64).unsigned_abs() as usize <= slack,
                "{}: ours {c}C vs paper {annotated_c}C",
                mix.id
            );
        }
    }

    #[test]
    fn wd8_contains_word_count_twice() {
        let wd8 = &eight_core_mixes()[2];
        let n = wd8.members.iter().filter(|m| **m == "word_count").count();
        assert_eq!(n, 2);
    }
}
