//! Determinism proof for the parallel profiler: sweeping the grid with
//! one worker and with many workers must produce bit-identical
//! [`ProfileGrid`]s. The memo is disabled so every run actually
//! simulates — a memo hit would trivially make the comparison pass.

use proptest::prelude::*;
use ref_sim::config::PlatformConfig;
use ref_workloads::profiler::{profile, ProfilerOptions};
use ref_workloads::profiles::BENCHMARKS;

fn opts(seed: u64, threads: usize) -> ProfilerOptions {
    ProfilerOptions {
        warmup_instructions: 10_000,
        instructions: 15_000,
        seed,
        // 2 x 3 grid keeps each case fast while still giving the pool
        // several points to distribute.
        cache_sizes: PlatformConfig::l2_sweep()[..2].to_vec(),
        bandwidths: PlatformConfig::bandwidth_sweep()[..3].to_vec(),
        threads: Some(threads),
        use_memo: false,
    }
}

fn grids_bit_identical(a: &ref_workloads::ProfileGrid, b: &ref_workloads::ProfileGrid) -> bool {
    a.workload == b.workload
        && a.points.len() == b.points.len()
        && a.points.iter().zip(&b.points).all(|(x, y)| {
            x.cache == y.cache
                && x.bandwidth.bytes_per_sec().to_bits() == y.bandwidth.bytes_per_sec().to_bits()
                && x.ipc.to_bits() == y.ipc.to_bits()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any benchmark, any seed, any worker count: the grid is the same
    /// bits as the serial sweep.
    #[test]
    fn thread_count_never_changes_the_grid(
        bench_idx in 0usize..28,
        seed in 0u64..u64::MAX,
        threads in 2usize..6,
    ) {
        let bench = &BENCHMARKS[bench_idx];
        let serial = profile(bench, &opts(seed, 1));
        let parallel = profile(bench, &opts(seed, threads));
        prop_assert!(
            grids_bit_identical(&serial, &parallel),
            "grid for {} diverged at {} threads", bench.name, threads
        );
    }
}

/// The global-width path (`threads: None`) agrees with the serial path
/// too — this is the configuration every experiment binary runs.
#[test]
fn default_width_matches_serial() {
    let bench = &BENCHMARKS[0];
    let serial = profile(bench, &opts(7, 1));
    let mut global = opts(7, 1);
    global.threads = None;
    let parallel = profile(bench, &global);
    assert!(grids_bit_identical(&serial, &parallel));
}

/// Memo hits return the same bits the simulation produced: a memo-on
/// run after a memo-off run is still identical.
#[test]
fn memo_is_transparent() {
    let bench = &BENCHMARKS[3];
    let cold = profile(bench, &opts(11, 2));
    let mut warm_opts = opts(11, 2);
    warm_opts.use_memo = true;
    let warm_a = profile(bench, &warm_opts); // populates the memo
    let warm_b = profile(bench, &warm_opts); // served from the memo
    assert!(grids_bit_identical(&cold, &warm_a));
    assert!(grids_bit_identical(&cold, &warm_b));
}
