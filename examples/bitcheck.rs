//! Cross-revision bit-identity canary: FNV-64 over every profile IPC bit
//! pattern for the first six benchmarks. Any simulator or profiler change
//! that alters a single output bit changes the printed hash, so run this
//! before and after touching `ref-sim`/`ref-workloads` hot paths.
//!
//! Reference hash at the PR-1 seed and after the PR-2 optimisations:
//! `997e25ef0800992e`.

use ref_fairness::workloads::profiler::{profile, ProfilerOptions};
use ref_fairness::workloads::profiles::BENCHMARKS;

fn main() {
    let opts = ProfilerOptions {
        warmup_instructions: 20_000,
        instructions: 30_000,
        ..ProfilerOptions::default()
    };
    let mut h: u64 = 0xcbf29ce484222325;
    for b in BENCHMARKS.iter().take(6) {
        let g = profile(b, &opts);
        for p in &g.points {
            h ^= p.ipc.to_bits();
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    println!("hash {h:016x}");
}
