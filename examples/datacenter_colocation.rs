//! Datacenter co-location: the full REF pipeline on simulated hardware.
//!
//! Four applications are co-located on a chip multiprocessor. Each is
//! profiled on the cycle-level simulator over the paper's 25-configuration
//! grid, a Cobb-Douglas utility is fitted by log-linear regression, the
//! REF mechanism computes fair shares, and the shares are enforced in the
//! simulator via way-partitioned cache and token-bucket bandwidth.
//!
//! Run with: `cargo run --release --example datacenter_colocation`

use ref_fairness::core::fitting::{fit_cobb_douglas, FitPoint};
use ref_fairness::core::mechanism::{EqualShare, Mechanism, ProportionalElasticity};
use ref_fairness::core::properties::FairnessReport;
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::CobbDouglas;
use ref_fairness::core::welfare::weighted_system_throughput;
use ref_fairness::sim::config::PlatformConfig;
use ref_fairness::sim::system::MulticoreSystem;
use ref_fairness::workloads::profiler::{profile, ProfilerOptions};
use ref_fairness::workloads::profiles::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = ["histogram", "canneal", "freqmine", "dedup"];
    let opts = ProfilerOptions {
        warmup_instructions: 60_000,
        instructions: 100_000,
        ..ProfilerOptions::default()
    };

    // 1. Profile and fit each co-located application.
    println!(
        "profiling {} applications on the Table-1 grid...",
        names.len()
    );
    let mut agents: Vec<CobbDouglas> = Vec::new();
    for name in names {
        let bench = by_name(name).expect("known benchmark");
        let grid = profile(bench, &opts);
        let points: Vec<FitPoint> = grid
            .points
            .iter()
            .map(|p| FitPoint::new(vec![p.bandwidth.gb_per_sec(), p.cache.mib_f64()], p.ipc))
            .collect::<Result<_, _>>()?;
        let fit = fit_cobb_douglas(&points)?;
        let u = fit.utility().rescaled();
        println!(
            "  {name:<12} R^2 {:.3}  rescaled elasticities: bw {:.3} cache {:.3}",
            fit.r_squared(),
            u.elasticity(0),
            u.elasticity(1)
        );
        agents.push(fit.utility().clone());
    }

    // 2. Allocate the shared chip: 24 GB/s, 12 MB.
    let capacity = Capacity::new(vec![24.0, 12.0])?;
    let allocation = ProportionalElasticity.allocate(&agents, &capacity)?;
    println!("\nREF allocation:");
    for (name, bundle) in names.iter().zip(allocation.bundles()) {
        println!(
            "  {name:<12} {:>5.2} GB/s, {:>5.2} MB",
            bundle.get(0),
            bundle.get(1)
        );
    }
    let report = FairnessReport::check_with_tolerance(&agents, &allocation, &capacity, 1e-3);
    println!(
        "  SI {}  EF {}  PE {}",
        report.sharing_incentives(),
        report.envy_free(),
        report.pareto_efficient
    );

    let equal = EqualShare.allocate(&agents, &capacity)?;
    println!(
        "\nweighted system throughput: REF {:.3} vs equal split {:.3}",
        weighted_system_throughput(&agents, &allocation, &capacity),
        weighted_system_throughput(&agents, &equal, &capacity)
    );

    // 3. Enforce the shares in the simulator and measure per-app IPC.
    let shares = allocation.shares(&capacity);
    let cache_shares: Vec<f64> = shares.iter().map(|s| s[1]).collect();
    let bw_shares: Vec<f64> = shares.iter().map(|s| s[0]).collect();
    let deps: Vec<f64> = names
        .iter()
        .map(|n| by_name(n).expect("known").params.dependent_fraction)
        .collect();
    // The shared machine the allocation was computed for: 24 GB/s, 12 MB.
    let platform = PlatformConfig::asplos14()
        .with_l2_size(ref_fairness::sim::config::CacheSize::from_mib(12))
        .with_bandwidth(ref_fairness::sim::config::Bandwidth::from_gb_per_sec(24.0));
    let mut system = MulticoreSystem::new(&platform, &cache_shares, &bw_shares)
        .with_dependent_load_fractions(deps);
    let streams: Vec<_> = names
        .iter()
        .map(|n| by_name(n).expect("known").stream(7))
        .collect();
    println!("\nenforcing shares in the simulator (way-partitioned L2, token-bucket DRAM):");
    let reports = system.run(streams, 150_000);
    for ((name, r), ways) in names.iter().zip(&reports).zip(system.allocated_ways()) {
        println!(
            "  {name:<12} {ways} L2 ways, IPC {:.3}, L2 hit rate {:.2}",
            r.ipc(),
            r.l2.hit_rate()
        );
    }
    Ok(())
}
