//! Enforcing REF shares with proportional-share schedulers.
//!
//! The REF mechanism outputs continuous shares; real hardware enforces
//! them with schedulers. This example allocates bandwidth between two
//! agents and drives weighted fair queueing, lottery and stride schedulers
//! against the target, reporting how tightly each converges (§4.4).
//!
//! Run with: `cargo run --example enforcement`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ref_fairness::core::mechanism::{Mechanism, ProportionalElasticity};
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::CobbDouglas;
use ref_fairness::sched::enforce::{enforcement_comparison, weights_for_resource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let agents = vec![
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
        CobbDouglas::new(1.0, vec![0.5, 0.5])?,
    ];
    let capacity = Capacity::new(vec![24.0, 12.0])?;
    let allocation = ProportionalElasticity.allocate(&agents, &capacity)?;

    for (resource, label) in [(0, "memory bandwidth"), (1, "cache capacity")] {
        let weights = weights_for_resource(&allocation, &capacity, resource)?;
        println!("target {label} shares: {weights:?}");
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for quanta in [100_u64, 1_000, 10_000] {
            println!("  after {quanta} scheduling quanta:");
            for outcome in enforcement_comparison(&weights, quanta, &mut rng)? {
                println!(
                    "    {:<24} achieved {:?} (max deviation {:.4})",
                    outcome.scheduler,
                    outcome
                        .achieved
                        .iter()
                        .map(|v| (v * 1000.0).round() / 1000.0)
                        .collect::<Vec<_>>(),
                    outcome.max_deviation
                );
            }
        }
        println!();
    }
    println!("stride converges fastest (bounded error), lottery is probabilistic,");
    println!("and WFQ tracks weights exactly once every client is backlogged.");
    Ok(())
}
