//! A long-running REF market behind its network front-end (§4.4 served).
//!
//! The same churn story as before — four agents with hidden Cobb-Douglas
//! utilities join a two-resource market (24 GB/s bandwidth, 12 MB cache)
//! in two waves, converge, then churn — but now the market runs inside a
//! **ref-serve** server and every interaction goes over TCP as
//! newline-delimited JSON: `join`, `tick`, `query`, `snapshot`,
//! `metrics`, `leave`, `demand`. The example finishes by proving the
//! server is a pure transport: the snapshot fetched over the wire
//! restores to an engine that allocates bit-identically, and the journal
//! replays offline into the exact final state.
//!
//! Run with: `cargo run --example market_service`

use ref_fairness::core::resource::Capacity;
use ref_fairness::market::{MarketConfig, MarketEngine, MarketSnapshot};
use ref_fairness::serve::{replay, Client, ServeConfig, Server, Value};

fn market_config() -> Result<MarketConfig, Box<dyn std::error::Error>> {
    Ok(MarketConfig::new(Capacity::new(vec![24.0, 12.0])?).with_seed(7))
}

fn print_fits(client: &mut Client, truths: &[(u64, [f64; 2])]) {
    for &(id, t) in truths {
        let Ok(reply) = client.query_agent(id) else {
            continue;
        };
        let e = reply.get("elasticities").unwrap().as_array().unwrap();
        println!(
            "    agent {id}: fitted ({:.3}, {:.3})  true ({:.2}, {:.2})  refits {}",
            e[0].as_f64().unwrap(),
            e[1].as_f64().unwrap(),
            t[0],
            t[1],
            reply.get("refits").unwrap().as_u64().unwrap()
        );
    }
}

fn bundle(client: &mut Client, id: u64) -> Vec<f64> {
    let reply = client.query_agent(id).expect("live agent");
    reply
        .get("bundle")
        .and_then(Value::as_array)
        .expect("allocated agent has a bundle")
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tick-on-demand: epochs run only when a client asks, so the run is
    // exactly reproducible. Pass `Some(interval)` for wall-clock epochs.
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig::new(market_config()?).with_epoch_interval(None),
    )?;
    println!("=== ref-serve listening on {} ===", server.addr());
    let mut client = Client::connect(server.addr())?;

    println!("\n=== Phase 1: two agents join over the wire, 20 epochs ===");
    client.join_truth(1, 1.0, &[0.6, 0.4])?;
    client.join_truth(2, 1.0, &[0.2, 0.8])?;
    for _ in 0..20 {
        client.tick()?;
    }
    print_fits(&mut client, &[(1, [0.6, 0.4]), (2, [0.2, 0.8])]);
    let (b1, b2) = (bundle(&mut client, 1), bundle(&mut client, 2));
    println!(
        "    allocation: agent 1 ({:.2} GB/s, {:.2} MB), agent 2 ({:.2} GB/s, {:.2} MB)",
        b1[0], b1[1], b2[0], b2[1]
    );
    // The paper's running example: the true REF point is (18, 4) / (6, 8).
    assert!((b1[0] - 18.0).abs() < 0.5);
    assert!((b2[1] - 8.0).abs() < 0.5);

    println!("\n=== Phase 2: two more join (4-agent market), 20 epochs ===");
    client.join_truth(3, 1.0, &[0.5, 0.5])?;
    client.join_truth(4, 1.0, &[0.75, 0.25])?;
    for _ in 0..20 {
        client.tick()?;
    }
    let truths = [
        (1, [0.6, 0.4]),
        (2, [0.2, 0.8]),
        (3, [0.5, 0.5]),
        (4, [0.75, 0.25]),
    ];
    print_fits(&mut client, &truths);
    for &(id, t) in &truths {
        let reply = client.query_agent(id)?;
        let e = reply.get("elasticities").unwrap().as_array().unwrap();
        assert!(
            (e[0].as_f64().unwrap() - t[0]).abs() < 0.05,
            "agent {id} did not converge"
        );
    }

    println!("\n=== Wire snapshot / offline restore round-trip ===");
    let text = client.snapshot()?;
    println!("    snapshot over the wire: {} bytes", text.len());
    let mut restored = MarketEngine::restore(&MarketSnapshot::decode(&text)?)?;
    // Tick the server and the restored engine one epoch each; the served
    // market must allocate bit-identically to its offline twin.
    let served = client.tick()?;
    let offline = {
        use ref_fairness::market::MarketEvent;
        restored.submit(MarketEvent::EpochTick);
        restored.pump()?.pop().unwrap()
    };
    let wire_alloc = served
        .get("report")
        .and_then(|r| r.get("allocation"))
        .and_then(Value::as_array)
        .expect("tick reply carries the allocation");
    let offline_alloc = offline.allocation.expect("offline tick allocates");
    for (slot, row) in wire_alloc.iter().enumerate() {
        for (r, v) in row.as_array().unwrap().iter().enumerate() {
            assert_eq!(
                v.as_f64().unwrap().to_bits(),
                offline_alloc.bundle(slot).get(r).to_bits(),
                "served allocation diverged from the restored engine"
            );
        }
    }
    println!("    next-epoch allocations are bit-identical ✓");

    println!("\n=== Phase 3: agent 2 leaves, agent 1 changes demand, 15 epochs ===");
    client.leave(2)?;
    client.demand(1, Some((1.0, &[0.3, 0.7])))?;
    for _ in 0..15 {
        client.tick()?;
    }
    print_fits(
        &mut client,
        &[(1, [0.3, 0.7]), (3, [0.5, 0.5]), (4, [0.75, 0.25])],
    );

    println!("\n=== Service summary ===");
    let metrics = client.metrics()?;
    let epochs = metrics
        .get("market")
        .and_then(|m| m.get("epochs"))
        .and_then(Value::as_u64)
        .unwrap();
    println!(
        "    market metrics: {}",
        metrics.get("market").unwrap().encode()
    );
    println!(
        "    server accepted {} requests, rejected {} (overload)",
        metrics
            .get("server")
            .and_then(|s| s.get("accepted"))
            .and_then(Value::as_u64)
            .unwrap(),
        metrics
            .get("server")
            .and_then(|s| s.get("rejected_overload"))
            .and_then(Value::as_u64)
            .unwrap()
    );
    assert!(epochs >= 50, "ran {epochs} epochs");

    println!("\n=== Graceful drain + offline journal replay ===");
    let report = server.shutdown();
    assert_eq!(report.metrics.protocol_errors, 0);
    let replayed = replay(market_config()?, &report.journal)?;
    assert_eq!(
        replayed.snapshot().encode(),
        report.snapshot,
        "journal replay must be byte-identical"
    );
    println!(
        "    {} journaled events replay into the exact final state ✓",
        report.journal.len()
    );
    Ok(())
}
