//! A long-running REF market with agent churn (§4.4 as a service).
//!
//! Four agents with hidden Cobb-Douglas utilities join a two-resource
//! market (24 GB/s bandwidth, 12 MB cache) in two waves. Each epoch the
//! engine refits every agent's utility from performance observations,
//! recomputes fair shares only when the fitted population actually moved
//! (incremental reallocation), audits SI/EF/PE, and enforces the shares
//! with a stride scheduler. Mid-run the market is snapshotted, serialized,
//! restored, and shown to allocate bit-identically. Finally one agent
//! leaves and another changes demand, and the market re-converges.
//!
//! Run with: `cargo run --example market_service`

use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::CobbDouglas;
use ref_fairness::market::{
    MarketConfig, MarketEngine, MarketEvent, MarketSnapshot, ObservationSource,
};

fn truth(e0: f64, e1: f64) -> ObservationSource {
    ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![e0, e1]).expect("valid utility"))
}

fn tick(market: &mut MarketEngine, epochs: usize) -> Vec<ref_fairness::market::EpochReport> {
    market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, epochs));
    market.pump().expect("valid events")
}

fn print_state(market: &MarketEngine, truths: &[(u64, [f64; 2])]) {
    for &(id, t) in truths {
        let Some(agent) = market.agent(id) else {
            continue;
        };
        let u = agent.reported_utility();
        println!(
            "    agent {id}: fitted ({:.3}, {:.3})  true ({:.2}, {:.2})  refits {}",
            u.elasticity(0),
            u.elasticity(1),
            t[0],
            t[1],
            agent.estimator.refits()
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = Capacity::new(vec![24.0, 12.0])?;
    let mut market = MarketEngine::new(MarketConfig::new(capacity).with_seed(7))?;

    println!("=== Phase 1: two agents join, 20 epochs ===");
    market.submit(MarketEvent::AgentJoined {
        id: 1,
        source: truth(0.6, 0.4),
    });
    market.submit(MarketEvent::AgentJoined {
        id: 2,
        source: truth(0.2, 0.8),
    });
    let reports = tick(&mut market, 20);
    let truths = [(1, [0.6, 0.4]), (2, [0.2, 0.8])];
    print_state(&market, &truths);
    let alloc = reports.last().unwrap().allocation.as_ref().unwrap();
    println!(
        "    allocation: agent 1 ({:.2} GB/s, {:.2} MB), agent 2 ({:.2} GB/s, {:.2} MB)",
        alloc.bundle(0).get(0),
        alloc.bundle(0).get(1),
        alloc.bundle(1).get(0),
        alloc.bundle(1).get(1)
    );
    // The paper's running example: the true REF point is (18, 4) / (6, 8).
    assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.5);
    assert!((alloc.bundle(1).get(1) - 8.0).abs() < 0.5);

    println!("\n=== Phase 2: two more join (4-agent market), 20 epochs ===");
    market.submit(MarketEvent::AgentJoined {
        id: 3,
        source: truth(0.5, 0.5),
    });
    market.submit(MarketEvent::AgentJoined {
        id: 4,
        source: truth(0.75, 0.25),
    });
    tick(&mut market, 20);
    let truths = [
        (1, [0.6, 0.4]),
        (2, [0.2, 0.8]),
        (3, [0.5, 0.5]),
        (4, [0.75, 0.25]),
    ];
    print_state(&market, &truths);
    for &(id, t) in &truths {
        let fitted = market.agent(id).unwrap().reported_utility();
        assert!(
            (fitted.elasticity(0) - t[0]).abs() < 0.05,
            "agent {id} did not converge: {fitted:?}"
        );
    }

    println!("\n=== Snapshot / restore round-trip ===");
    let text = market.snapshot().encode();
    println!(
        "    serialized market: {} bytes, {} agents",
        text.len(),
        market.num_live_agents()
    );
    let mut restored = MarketEngine::restore(&MarketSnapshot::decode(&text)?)?;
    let (a, b) = (
        tick(&mut market, 1).pop().unwrap(),
        tick(&mut restored, 1).pop().unwrap(),
    );
    let (x, y) = (a.allocation.unwrap(), b.allocation.unwrap());
    for (bx, by) in x.bundles().iter().zip(y.bundles()) {
        for r in 0..bx.num_resources() {
            assert_eq!(
                bx.get(r).to_bits(),
                by.get(r).to_bits(),
                "restored allocation diverged"
            );
        }
    }
    println!("    next-epoch allocations are bit-identical ✓");

    println!("\n=== Phase 3: agent 2 leaves, agent 1 changes demand, 15 epochs ===");
    market.submit(MarketEvent::AgentLeft { id: 2 });
    market.submit(MarketEvent::DemandChanged {
        id: 1,
        new_truth: Some(CobbDouglas::new(1.0, vec![0.3, 0.7])?),
    });
    tick(&mut market, 15);
    print_state(
        &market,
        &[(1, [0.3, 0.7]), (3, [0.5, 0.5]), (4, [0.75, 0.25])],
    );

    println!("\n=== Service summary after {} epochs ===", market.epoch());
    println!("    {}", market.metrics());
    let audit = market.auditor();
    println!(
        "    audited {} epochs: SI violations after warm-up = {}",
        audit.epochs_audited,
        audit.si_violations_after_warmup()
    );
    assert!(market.epoch() >= 50, "ran {} epochs", market.epoch());
    assert_eq!(audit.si_violations_after_warmup(), 0);
    assert!(audit.clean_after_warmup());
    println!("    all post-warm-up epochs satisfied SI, EF and PE ✓");
    Ok(())
}
