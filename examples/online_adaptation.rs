//! On-line profiling: tenants that learn their own utilities at run time.
//!
//! New tenants start with the paper's naive prior `u = x^0.5 y^0.5`
//! (§4.4). Each allocation round, the system divides the hardware by the
//! *current estimates*, tenants measure their performance at the granted
//! (slightly jittered) allocations, and re-fit. Within a handful of rounds
//! the allocation converges to the REF point of the true utilities.
//!
//! Run with: `cargo run --example online_adaptation`

use ref_fairness::core::mechanism::{Mechanism, ProportionalElasticity};
use ref_fairness::core::online::OnlineEstimator;
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::{CobbDouglas, Utility};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ground truth (unknown to the system): the paper's running example.
    let truths = [
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
    ];
    let capacity = Capacity::new(vec![24.0, 12.0])?;
    let mut estimators = [OnlineEstimator::new(2)?, OnlineEstimator::new(2)?];

    println!("round | est. elasticities (bw) | allocation of user 1 (bw, cache)");
    for round in 0..12_u32 {
        let reported: Vec<CobbDouglas> =
            estimators.iter().map(|e| e.utility().rescaled()).collect();
        let alloc = ProportionalElasticity.allocate(&reported, &capacity)?;
        println!(
            "{round:>5} | u1 bw {:.3}, u2 bw {:.3}   | ({:>5.2} GB/s, {:>5.2} MB)",
            reported[0].elasticity(0),
            reported[1].elasticity(0),
            alloc.bundle(0).get(0),
            alloc.bundle(0).get(1)
        );
        for (i, est) in estimators.iter_mut().enumerate() {
            // Tenants observe performance at their allocation; deterministic
            // jitter supplies the excitation regression needs.
            let jitter = 0.85 + 0.1 * ((f64::from(round) * 1.7 + i as f64).sin() + 1.0);
            let x = alloc.bundle(i).get(0) * jitter;
            let y = alloc.bundle(i).get(1) * (2.0 - jitter);
            let perf = truths[i].value_slice(&[x, y]);
            est.observe(vec![x, y], perf)?;
        }
    }

    println!();
    for (i, est) in estimators.iter().enumerate() {
        let u = est.utility().rescaled();
        println!(
            "user {} learned (bw {:.3}, cache {:.3}) after {} refits, R^2 {:.4}",
            i + 1,
            u.elasticity(0),
            u.elasticity(1),
            est.refits(),
            est.r_squared().unwrap_or(f64::NAN)
        );
    }
    println!("true REF point is (18 GB/s, 4 MB) for user 1 — compare the last rows above.");
    Ok(())
}
