//! Quickstart: the paper's running example, end to end.
//!
//! Two users share a quad-core chip with 24 GB/s of memory bandwidth and
//! 12 MB of last-level cache. User 1 is bursty with little data reuse
//! (`u1 = x^0.6 y^0.4`), user 2 is cache-friendly (`u2 = x^0.2 y^0.8`).
//! The REF proportional-elasticity mechanism computes each user's fair
//! share in closed form, and the property checkers confirm sharing
//! incentives, envy-freeness and Pareto efficiency.
//!
//! Run with: `cargo run --example quickstart`

use ref_fairness::core::mechanism::{Mechanism, ProportionalElasticity};
use ref_fairness::core::properties::FairnessReport;
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::{CobbDouglas, Utility};
use ref_fairness::core::welfare::weighted_utility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Agents report Cobb-Douglas utilities (normally fitted from
    //    profiles; see the `datacenter_colocation` example).
    let agents = vec![
        CobbDouglas::new(1.0, vec![0.6, 0.4])?, // canneal-like
        CobbDouglas::new(1.0, vec![0.2, 0.8])?, // freqmine-like
    ];
    let capacity = Capacity::new(vec![24.0, 12.0])?; // GB/s, MB

    // 2. Allocate in proportion to re-scaled elasticities (Eq. 13).
    let allocation = ProportionalElasticity.allocate(&agents, &capacity)?;
    println!("REF allocation:");
    for (i, bundle) in allocation.bundles().iter().enumerate() {
        println!(
            "  user {}: {:.1} GB/s bandwidth, {:.1} MB cache (weighted utility {:.3})",
            i + 1,
            bundle.get(0),
            bundle.get(1),
            weighted_utility(&agents[i], bundle, &capacity)
        );
    }

    // 3. Verify the game-theoretic properties.
    let report = FairnessReport::check(&agents, &allocation, &capacity);
    println!();
    println!("sharing incentives: {}", report.sharing_incentives());
    println!("envy-freeness:      {}", report.envy_free());
    println!("Pareto efficiency:  {}", report.pareto_efficient);
    assert!(report.is_fair_with_si());

    // 4. Each user prefers its share to the equal split — the incentive to
    //    participate.
    let equal = capacity.equal_split(agents.len());
    for (i, u) in agents.iter().enumerate() {
        assert!(u.value(allocation.bundle(i)) >= u.value(&equal));
        println!(
            "user {} gains {:+.1}% over an equal split",
            i + 1,
            (u.value(allocation.bundle(i)) / u.value(&equal) - 1.0) * 100.0
        );
    }
    Ok(())
}
