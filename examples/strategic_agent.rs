//! Strategic agents and strategy-proofness in the large.
//!
//! A tenant wonders whether mis-reporting its resource elasticities could
//! win it a larger share under REF. This example computes the tenant's
//! best response (Eq. 15) against increasingly large systems and shows the
//! gain from lying vanish — the paper's SPL property (§4.3, Appendix A).
//!
//! Run with: `cargo run --example strategic_agent`

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ref_fairness::core::spl::best_response;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The tenant's true preferences: strongly bandwidth-elastic.
    let truth = [0.8, 0.2];
    let capacity = [100.0, 12.0]; // a large server: >100 GB/s, 12 MB

    println!(
        "strategic tenant with true elasticities (bw {:.1}, cache {:.1})",
        truth[0], truth[1]
    );
    println!();
    println!(
        "{:>8} {:>22} {:>14} {:>12}",
        "tenants", "best report (bw, $)", "gain (%)", "deviation"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    for n in [2_usize, 4, 8, 16, 32, 64, 128] {
        // Everyone else's re-scaled elasticities, summed per resource.
        let mut others = [0.0, 0.0];
        for _ in 0..n - 1 {
            let a: f64 = rng.gen_range(0.05..0.95);
            others[0] += a;
            others[1] += 1.0 - a;
        }
        let gain = best_response(&truth, &others, &capacity)?;
        println!(
            "{n:>8} {:>22} {:>14.4} {:>12.4}",
            format!("({:.3}, {:.3})", gain.best_report[0], gain.best_report[1]),
            gain.relative_gain() * 100.0,
            gain.report_deviation(&truth)
        );
    }

    println!();
    println!("with tens of tenants the best response is the truth: REF is");
    println!("strategy-proof in the large, so tenants simply report fitted");
    println!("elasticities without gaming the mechanism.");
    Ok(())
}
