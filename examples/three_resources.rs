//! Beyond two resources: allocating cores, cache and bandwidth.
//!
//! The paper closes by noting the mechanism "can support additional
//! resources, such as the number of processor cores" — every mechanism in
//! this crate is written for arbitrary `R`. This example divides three
//! resources among four heterogeneous tenants and verifies the fairness
//! properties still hold.
//!
//! Run with: `cargo run --example three_resources`

use ref_fairness::core::mechanism::{EqualSlowdown, MaxWelfare, Mechanism, ProportionalElasticity};
use ref_fairness::core::properties::FairnessReport;
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::CobbDouglas;
use ref_fairness::core::welfare::weighted_system_throughput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Resources: (memory bandwidth GB/s, cache MB, cores).
    let capacity = Capacity::new(vec![48.0, 24.0, 16.0])?;
    let agents = vec![
        // A scale-out web tier: cores above all.
        CobbDouglas::new(1.0, vec![0.15, 0.10, 0.75])?,
        // An in-memory analytics engine: cache then bandwidth.
        CobbDouglas::new(1.0, vec![0.25, 0.60, 0.15])?,
        // A streaming ETL job: bandwidth.
        CobbDouglas::new(1.0, vec![0.70, 0.10, 0.20])?,
        // A balanced batch workload.
        CobbDouglas::new(1.0, vec![0.34, 0.33, 0.33])?,
    ];
    let names = ["web tier", "analytics", "etl", "batch"];

    let alloc = ProportionalElasticity.allocate(&agents, &capacity)?;
    println!("REF allocation over (bandwidth, cache, cores):");
    for (name, b) in names.iter().zip(alloc.bundles()) {
        println!(
            "  {name:<10} {:>5.1} GB/s {:>5.1} MB {:>5.1} cores",
            b.get(0),
            b.get(1),
            b.get(2)
        );
    }
    let report = FairnessReport::check(&agents, &alloc, &capacity);
    println!(
        "  SI {}  EF {}  PE {}",
        report.sharing_incentives(),
        report.envy_free(),
        report.pareto_efficient
    );
    assert!(report.is_fair_with_si());

    println!("\nweighted system throughput across mechanisms:");
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(MaxWelfare::without_fairness()),
        Box::new(MaxWelfare::with_fairness()),
        Box::new(ProportionalElasticity),
        Box::new(EqualSlowdown::with_fairness()),
        Box::new(EqualSlowdown::new()),
    ];
    for m in &mechanisms {
        match m.allocate(&agents, &capacity) {
            Ok(a) => println!(
                "  {:<30} {:.4}",
                m.name(),
                weighted_system_throughput(&agents, &a, &capacity)
            ),
            Err(e) => println!("  {:<30} error: {e}", m.name()),
        }
    }
    Ok(())
}
