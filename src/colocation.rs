//! High-level co-location workflow: profile → fit → allocate → verify →
//! enforcement weights, in one call.
//!
//! This is the turnkey API tying the workspace together. Pick tenants (by
//! benchmark name or with explicit utilities), a machine, and a mechanism;
//! [`Colocation::run`] executes the paper's full pipeline and returns an
//! auditable [`ColocationOutcome`].
//!
//! # Examples
//!
//! ```
//! use ref_fairness::colocation::Colocation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let outcome = Colocation::new()
//!     .tenant("histogram")
//!     .tenant("dedup")
//!     .machine(24.0, 12.0)
//!     .profiling_instructions(5_000, 5_000) // doctest-fast; default is larger
//!     .run()?;
//! assert_eq!(outcome.allocation.num_agents(), 2);
//! assert!(outcome.report.sharing_incentives());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ref_core::fitting::{fit_cobb_douglas, FitPoint};
use ref_core::mechanism::{Mechanism, ProportionalElasticity};
use ref_core::properties::FairnessReport;
use ref_core::resource::{Allocation, Capacity};
use ref_core::utility::CobbDouglas;
use ref_workloads::profiler::{profile, ProfilerOptions};
use ref_workloads::profiles::by_name;

/// Error from the co-location workflow.
#[derive(Debug)]
pub struct ColocationError(String);

impl fmt::Display for ColocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "colocation failed: {}", self.0)
    }
}

impl Error for ColocationError {}

/// One tenant: either a named benchmark to profile, or a pre-fitted
/// utility supplied directly.
#[derive(Debug, Clone)]
enum Tenant {
    Benchmark(String),
    Fitted { label: String, utility: CobbDouglas },
}

/// Builder for a co-location run.
///
/// Defaults: the REF proportional-elasticity mechanism, the paper's
/// 24 GB/s + 12 MB machine, and a profile length suitable for interactive
/// use.
pub struct Colocation {
    tenants: Vec<Tenant>,
    capacity: Capacity,
    mechanism: Box<dyn Mechanism>,
    warmup_instructions: u64,
    instructions: u64,
}

impl fmt::Debug for Colocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Colocation")
            .field("tenants", &self.tenants)
            .field("capacity", &self.capacity)
            .field("mechanism", &self.mechanism.name())
            .field("warmup_instructions", &self.warmup_instructions)
            .field("instructions", &self.instructions)
            .finish()
    }
}

impl Default for Colocation {
    fn default() -> Colocation {
        Colocation::new()
    }
}

impl Colocation {
    /// Creates a builder with the paper's defaults.
    pub fn new() -> Colocation {
        Colocation {
            tenants: Vec::new(),
            capacity: Capacity::new(vec![24.0, 12.0]).expect("static capacities are valid"),
            mechanism: Box::new(ProportionalElasticity),
            warmup_instructions: 60_000,
            instructions: 100_000,
        }
    }

    /// Adds a tenant by benchmark name (profiled and fitted at
    /// [`run`](Colocation::run) time).
    pub fn tenant(mut self, benchmark: &str) -> Colocation {
        self.tenants.push(Tenant::Benchmark(benchmark.to_string()));
        self
    }

    /// Adds a tenant with a known utility (skipping profiling), e.g. from
    /// a previous run or an online estimator.
    pub fn tenant_with_utility(mut self, label: &str, utility: CobbDouglas) -> Colocation {
        self.tenants.push(Tenant::Fitted {
            label: label.to_string(),
            utility,
        });
        self
    }

    /// Sets the shared machine: bandwidth in GB/s and cache in MB.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is not strictly positive and finite.
    pub fn machine(mut self, bandwidth_gbs: f64, cache_mb: f64) -> Colocation {
        self.capacity =
            Capacity::new(vec![bandwidth_gbs, cache_mb]).expect("capacities must be positive");
        self
    }

    /// Replaces the allocation mechanism (default: proportional
    /// elasticity).
    pub fn mechanism(mut self, mechanism: Box<dyn Mechanism>) -> Colocation {
        self.mechanism = mechanism;
        self
    }

    /// Overrides the per-configuration profile length.
    pub fn profiling_instructions(mut self, warmup: u64, measured: u64) -> Colocation {
        self.warmup_instructions = warmup;
        self.instructions = measured;
        self
    }

    /// Executes the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`ColocationError`] if no tenants were added, a benchmark
    /// name is unknown, or fitting/allocation fails.
    pub fn run(self) -> Result<ColocationOutcome, ColocationError> {
        if self.tenants.is_empty() {
            return Err(ColocationError("no tenants added".to_string()));
        }
        let opts = ProfilerOptions {
            warmup_instructions: self.warmup_instructions,
            instructions: self.instructions,
            ..ProfilerOptions::default()
        };
        let mut fit_cache: HashMap<String, (CobbDouglas, f64)> = HashMap::new();
        let mut labels = Vec::new();
        let mut utilities = Vec::new();
        let mut r_squared = Vec::new();
        for t in &self.tenants {
            match t {
                Tenant::Fitted { label, utility } => {
                    labels.push(label.clone());
                    utilities.push(utility.clone());
                    r_squared.push(None);
                }
                Tenant::Benchmark(name) => {
                    let (u, r2) = match fit_cache.get(name) {
                        Some(hit) => hit.clone(),
                        None => {
                            let bench = by_name(name).ok_or_else(|| {
                                ColocationError(format!("unknown benchmark '{name}'"))
                            })?;
                            let grid = profile(bench, &opts);
                            let points: Vec<FitPoint> = grid
                                .points
                                .iter()
                                .map(|p| {
                                    FitPoint::new(
                                        vec![p.bandwidth.gb_per_sec(), p.cache.mib_f64()],
                                        p.ipc,
                                    )
                                })
                                .collect::<Result<_, _>>()
                                .map_err(|e| ColocationError(e.to_string()))?;
                            let fit = fit_cobb_douglas(&points)
                                .map_err(|e| ColocationError(e.to_string()))?;
                            let entry = (fit.utility().clone(), fit.r_squared());
                            fit_cache.insert(name.clone(), entry.clone());
                            entry
                        }
                    };
                    labels.push(name.clone());
                    utilities.push(u);
                    r_squared.push(Some(r2));
                }
            }
        }
        let allocation = self
            .mechanism
            .allocate(&utilities, &self.capacity)
            .map_err(|e| ColocationError(e.to_string()))?;
        let report =
            FairnessReport::check_with_tolerance(&utilities, &allocation, &self.capacity, 1e-3);
        let shares = allocation.shares(&self.capacity);
        let bandwidth_weights = shares.iter().map(|s| s[0]).collect();
        let cache_weights = shares.iter().map(|s| s[1]).collect();
        Ok(ColocationOutcome {
            labels,
            utilities,
            r_squared,
            capacity: self.capacity,
            allocation,
            report,
            bandwidth_weights,
            cache_weights,
        })
    }
}

/// Everything the workflow produced, ready for inspection or enforcement.
#[derive(Debug, Clone)]
pub struct ColocationOutcome {
    /// Tenant labels, in input order.
    pub labels: Vec<String>,
    /// The (fitted or supplied) utilities.
    pub utilities: Vec<CobbDouglas>,
    /// Fit quality per tenant; `None` for utilities supplied directly.
    pub r_squared: Vec<Option<f64>>,
    /// The machine the allocation was computed for.
    pub capacity: Capacity,
    /// The computed allocation.
    pub allocation: Allocation,
    /// SI / EF / PE verification.
    pub report: FairnessReport,
    /// Bandwidth shares, ready as scheduler weights
    /// (see `ref_sched::enforce`).
    pub bandwidth_weights: Vec<f64>,
    /// Cache shares, ready for way partitioning
    /// (see `ref_sim::cache::partition_ways`).
    pub cache_weights: Vec<f64>,
}

impl ColocationOutcome {
    /// Weighted system throughput of the outcome (Eq. 17).
    pub fn weighted_throughput(&self) -> f64 {
        ref_core::welfare::weighted_system_throughput(
            &self.utilities,
            &self.allocation,
            &self.capacity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ref_core::mechanism::EqualShare;

    #[test]
    fn profiles_and_allocates_named_tenants() {
        let outcome = Colocation::new()
            .tenant("histogram")
            .tenant("dedup")
            .profiling_instructions(20_000, 30_000)
            .run()
            .unwrap();
        assert_eq!(outcome.labels, vec!["histogram", "dedup"]);
        assert!(outcome.report.is_fair_with_si(), "{:?}", outcome.report);
        // Preferences drive shares the right way.
        assert!(outcome.cache_weights[0] > outcome.cache_weights[1]);
        assert!(outcome.bandwidth_weights[1] > outcome.bandwidth_weights[0]);
        assert!(outcome.r_squared[0].unwrap() > 0.5);
        assert!(outcome.weighted_throughput() > 0.0);
    }

    #[test]
    fn duplicate_tenants_profile_once_and_split_evenly() {
        let outcome = Colocation::new()
            .tenant("dedup")
            .tenant("dedup")
            .profiling_instructions(20_000, 30_000)
            .run()
            .unwrap();
        assert!((outcome.cache_weights[0] - outcome.cache_weights[1]).abs() < 1e-9);
    }

    #[test]
    fn explicit_utilities_skip_profiling() {
        let outcome = Colocation::new()
            .tenant_with_utility("a", CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap())
            .tenant_with_utility("b", CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap())
            .run()
            .unwrap();
        assert_eq!(outcome.r_squared, vec![None, None]);
        assert!((outcome.allocation.bundle(0).get(0) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn alternative_mechanism_is_honored() {
        let outcome = Colocation::new()
            .tenant_with_utility("a", CobbDouglas::new(1.0, vec![0.9, 0.1]).unwrap())
            .tenant_with_utility("b", CobbDouglas::new(1.0, vec![0.1, 0.9]).unwrap())
            .mechanism(Box::new(EqualShare))
            .run()
            .unwrap();
        assert!((outcome.bandwidth_weights[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_are_reported() {
        assert!(Colocation::new().run().is_err());
        let e = Colocation::new()
            .tenant("not_a_benchmark")
            .run()
            .unwrap_err();
        assert!(e.to_string().contains("not_a_benchmark"));
    }

    #[test]
    fn custom_machine_capacity() {
        let outcome = Colocation::new()
            .tenant_with_utility("a", CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap())
            .machine(100.0, 50.0)
            .run()
            .unwrap();
        assert_eq!(outcome.capacity.as_slice(), &[100.0, 50.0]);
        assert_eq!(outcome.allocation.bundle(0).get(0), 100.0);
    }
}
