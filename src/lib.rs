//! Facade crate for the REF (Resource Elasticity Fairness) reproduction.
//!
//! Re-exports every workspace crate under one roof and provides the
//! high-level [`colocation`] workflow (profile → fit → allocate → verify →
//! enforcement weights in one builder call).
//!
//! See [`ref_core`] for the paper's contribution (mechanisms and property
//! checkers), [`ref_market`] for the long-running epoch-driven allocation
//! service, [`ref_serve`] for its batching, backpressured network
//! front-end, and the substrate crates [`ref_sim`], [`ref_workloads`],
//! [`ref_solver`], [`ref_sched`].

pub mod colocation;

pub use ref_core as core;
pub use ref_market as market;
pub use ref_sched as sched;
pub use ref_serve as serve;
pub use ref_sim as sim;
pub use ref_solver as solver;
pub use ref_workloads as workloads;
