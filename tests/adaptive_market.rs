//! Integration: online estimation, the CEEI market equivalence and the
//! facade workflow composed together.

use ref_fairness::colocation::Colocation;
use ref_fairness::core::ceei::{competitive_equilibrium, tatonnement};
use ref_fairness::core::mechanism::{Mechanism, ProportionalElasticity};
use ref_fairness::core::online::OnlineEstimator;
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::{CobbDouglas, Utility};

#[test]
fn market_prices_explain_the_ref_allocation_of_fitted_tenants() {
    // Run the facade pipeline, then confirm the REF allocation it produced
    // is a competitive equilibrium of the fitted utilities: equal budgets,
    // clearing prices, and demands equal to the granted bundles.
    let outcome = Colocation::new()
        .tenant("histogram")
        .tenant("dedup")
        .profiling_instructions(20_000, 30_000)
        .run()
        .unwrap();
    let eq = competitive_equilibrium(&outcome.utilities, &outcome.capacity).unwrap();
    for i in 0..2 {
        for r in 0..2 {
            let a = outcome.allocation.bundle(i).get(r);
            let b = eq.allocation.bundle(i).get(r);
            assert!((a - b).abs() < 1e-9, "agent {i} resource {r}: {a} vs {b}");
        }
    }
    // And the tatonnement dynamic reaches the same prices from flat ones.
    let t = tatonnement(&outcome.utilities, &outcome.capacity, &[1.0, 1.0], 300).unwrap();
    for (p, q) in t.prices.iter().zip(&eq.prices) {
        assert!((p - q).abs() < 1e-6 * q);
    }
}

#[test]
fn online_estimates_feed_the_colocation_workflow() {
    // Learn a tenant's utility online, then hand the estimate to the
    // workflow alongside a profiled tenant.
    let truth = CobbDouglas::new(1.0, vec![0.7, 0.3]).unwrap();
    let mut est = OnlineEstimator::new(2).unwrap();
    for i in 0..10_u32 {
        let x = 1.0 + f64::from(i % 4);
        let y = 0.5 + f64::from(i % 3);
        est.observe(vec![x, y], truth.value_slice(&[x, y])).unwrap();
    }
    let outcome = Colocation::new()
        .tenant_with_utility("learned", est.utility().clone())
        .tenant("histogram")
        .profiling_instructions(20_000, 30_000)
        .run()
        .unwrap();
    assert!(outcome.report.sharing_incentives());
    // The learned tenant's bandwidth lean must show in its share.
    assert!(outcome.bandwidth_weights[0] > outcome.cache_weights[0]);
}

#[test]
fn repeated_allocation_is_idempotent() {
    // Re-running the mechanism on its own output's implied preferences
    // changes nothing — a sanity property for control loops that
    // re-allocate periodically.
    let agents = vec![
        CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
        CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
    ];
    let c = Capacity::new(vec![24.0, 12.0]).unwrap();
    let a1 = ProportionalElasticity.allocate(&agents, &c).unwrap();
    let a2 = ProportionalElasticity.allocate(&agents, &c).unwrap();
    assert_eq!(a1, a2);
}
