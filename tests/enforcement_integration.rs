//! Integration between the allocation mechanism and the enforcement
//! schedulers.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ref_fairness::core::mechanism::{Mechanism, ProportionalElasticity};
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::CobbDouglas;
use ref_fairness::sched::enforce::{enforcement_comparison, weights_for_resource};
use ref_fairness::sched::{LotteryScheduler, StrideScheduler, WeightedFairQueue};

fn allocation_weights() -> (Vec<f64>, Vec<f64>) {
    let agents = vec![
        CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
        CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        CobbDouglas::new(1.0, vec![0.4, 0.6]).unwrap(),
    ];
    let c = Capacity::new(vec![24.0, 12.0]).unwrap();
    let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
    (
        weights_for_resource(&alloc, &c, 0).unwrap(),
        weights_for_resource(&alloc, &c, 1).unwrap(),
    )
}

#[test]
fn all_schedulers_enforce_both_resources() {
    let (bw, cache) = allocation_weights();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for weights in [bw, cache] {
        let outcomes = enforcement_comparison(&weights, 50_000, &mut rng).unwrap();
        for o in outcomes {
            assert!(
                o.max_deviation < 0.01,
                "{} deviation {}",
                o.scheduler,
                o.max_deviation
            );
        }
    }
}

#[test]
fn schedulers_agree_on_long_run_shares() {
    let (bw, _) = allocation_weights();
    let mut wfq: WeightedFairQueue<u64> = WeightedFairQueue::new(bw.clone()).unwrap();
    for q in 0..30_000_u64 {
        for c in 0..bw.len() {
            wfq.enqueue(c, q, 1.0).unwrap();
        }
        wfq.dequeue();
    }
    let mut stride = StrideScheduler::new(bw.clone()).unwrap();
    for _ in 0..30_000 {
        stride.next_quantum();
    }
    let mut lottery = LotteryScheduler::new(bw.clone()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for _ in 0..30_000 {
        lottery.draw(&mut rng);
    }
    let w = wfq.service_shares();
    let s = stride.service_shares();
    let l = lottery.service_shares();
    for i in 0..bw.len() {
        assert!((w[i] - s[i]).abs() < 0.01, "wfq {w:?} vs stride {s:?}");
        assert!((s[i] - l[i]).abs() < 0.02, "stride {s:?} vs lottery {l:?}");
    }
}

#[test]
fn weights_for_each_resource_sum_to_one() {
    let (bw, cache) = allocation_weights();
    assert!((bw.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!((cache.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}
