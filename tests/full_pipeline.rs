//! End-to-end integration: simulate → profile → fit → allocate → verify →
//! enforce, across every crate in the workspace.

use ref_fairness::core::fitting::{fit_cobb_douglas, FitPoint};
use ref_fairness::core::mechanism::{Mechanism, ProportionalElasticity};
use ref_fairness::core::properties::FairnessReport;
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::CobbDouglas;
use ref_fairness::sim::config::{Bandwidth, CacheSize, PlatformConfig};
use ref_fairness::sim::system::MulticoreSystem;
use ref_fairness::workloads::profiler::{profile, ProfilerOptions};
use ref_fairness::workloads::profiles::by_name;

fn quick_opts() -> ProfilerOptions {
    ProfilerOptions {
        warmup_instructions: 40_000,
        instructions: 60_000,
        ..ProfilerOptions::default()
    }
}

fn fit_named(name: &str) -> CobbDouglas {
    let grid = profile(by_name(name).expect("known benchmark"), &quick_opts());
    let pts: Vec<FitPoint> = grid
        .points
        .iter()
        .map(|p| FitPoint::new(vec![p.bandwidth.gb_per_sec(), p.cache.mib_f64()], p.ipc).unwrap())
        .collect();
    fit_cobb_douglas(&pts)
        .expect("grid is full rank")
        .utility()
        .clone()
}

#[test]
fn profile_fit_allocate_verify() {
    // A cache-preferring and a bandwidth-preferring application.
    let agents = vec![fit_named("histogram"), fit_named("dedup")];
    let capacity = Capacity::new(vec![24.0, 12.0]).unwrap();
    let alloc = ProportionalElasticity.allocate(&agents, &capacity).unwrap();

    // The fitted preferences must drive the allocation the right way:
    // histogram gets most of the cache, dedup most of the bandwidth.
    let shares = alloc.shares(&capacity);
    assert!(shares[0][1] > 0.6, "histogram cache share {:?}", shares);
    assert!(shares[1][0] > 0.6, "dedup bandwidth share {:?}", shares);

    // And the allocation is fair.
    let report = FairnessReport::check_with_tolerance(&agents, &alloc, &capacity, 1e-3);
    assert!(report.is_fair_with_si(), "{report:?}");
}

#[test]
fn enforced_allocation_reflects_preferences_in_simulator() {
    let names = ["histogram", "dedup"];
    let agents: Vec<CobbDouglas> = names.iter().map(|n| fit_named(n)).collect();
    let capacity = Capacity::new(vec![24.0, 12.0]).unwrap();
    let alloc = ProportionalElasticity.allocate(&agents, &capacity).unwrap();

    let shares = alloc.shares(&capacity);
    let cache_shares: Vec<f64> = shares.iter().map(|s| s[1]).collect();
    let bw_shares: Vec<f64> = shares.iter().map(|s| s[0]).collect();
    let platform = PlatformConfig::asplos14()
        .with_l2_size(CacheSize::from_mib(12))
        .with_bandwidth(Bandwidth::from_gb_per_sec(24.0));
    let deps: Vec<f64> = names
        .iter()
        .map(|n| by_name(n).unwrap().params.dependent_fraction)
        .collect();
    let mut system = MulticoreSystem::new(&platform, &cache_shares, &bw_shares)
        .with_dependent_load_fractions(deps);
    let streams: Vec<_> = names
        .iter()
        .map(|n| by_name(n).unwrap().stream(3))
        .collect();
    let reports = system.run(streams, 120_000);

    // The cache-preferring agent received most of the L2 and should enjoy
    // the better hit rate.
    assert!(
        reports[0].l2.hit_rate() > reports[1].l2.hit_rate(),
        "histogram {} vs dedup {}",
        reports[0].l2.hit_rate(),
        reports[1].l2.hit_rate()
    );
    // Both made progress.
    assert!(reports.iter().all(|r| r.ipc() > 0.0));
}

#[test]
fn ref_dominates_equal_split_for_every_agent() {
    use ref_fairness::core::utility::Utility;
    let agents = vec![fit_named("raytrace"), fit_named("ocean_cp")];
    let capacity = Capacity::new(vec![24.0, 12.0]).unwrap();
    let alloc = ProportionalElasticity.allocate(&agents, &capacity).unwrap();
    let equal = capacity.equal_split(2);
    for (i, u) in agents.iter().enumerate() {
        assert!(
            u.value(alloc.bundle(i)) >= u.value(&equal) * (1.0 - 1e-9),
            "agent {i} lost by sharing"
        );
    }
}
