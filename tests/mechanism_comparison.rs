//! Cross-mechanism integration: the §5.5 comparison invariants on fitted
//! utilities.

use ref_fairness::core::mechanism::{
    EqualShare, EqualSlowdown, MaxWelfare, Mechanism, ProportionalElasticity,
};
use ref_fairness::core::properties::FairnessReport;
use ref_fairness::core::resource::Capacity;
use ref_fairness::core::utility::CobbDouglas;
use ref_fairness::core::welfare::{
    egalitarian_welfare, nash_welfare, unfairness_index, weighted_system_throughput,
};

/// Heterogeneous four-agent population with unnormalized elasticities, as
/// fitting produces.
fn agents() -> Vec<CobbDouglas> {
    vec![
        CobbDouglas::new(0.9, vec![0.15, 0.45]).unwrap(),
        CobbDouglas::new(1.4, vec![0.50, 0.10]).unwrap(),
        CobbDouglas::new(0.6, vec![0.30, 0.30]).unwrap(),
        CobbDouglas::new(1.1, vec![0.55, 0.25]).unwrap(),
    ]
}

fn capacity() -> Capacity {
    Capacity::new(vec![24.0, 12.0]).unwrap()
}

#[test]
fn fair_mechanisms_satisfy_all_properties() {
    let (agents, c) = (agents(), capacity());
    for m in [
        Box::new(ProportionalElasticity) as Box<dyn Mechanism>,
        Box::new(MaxWelfare::with_fairness()),
    ] {
        let alloc = m.allocate(&agents, &c).unwrap();
        let report = FairnessReport::check_with_tolerance(&agents, &alloc, &c, 2e-3);
        assert!(
            report.sharing_incentives() && report.envy_free(),
            "{}: {report:?}",
            m.name()
        );
    }
}

#[test]
fn unconstrained_nash_maximizes_nash_welfare() {
    let (agents, c) = (agents(), capacity());
    let unfair = MaxWelfare::without_fairness()
        .allocate(&agents, &c)
        .unwrap();
    for other in [
        ProportionalElasticity.allocate(&agents, &c).unwrap(),
        EqualShare.allocate(&agents, &c).unwrap(),
        EqualSlowdown::new().allocate(&agents, &c).unwrap(),
    ] {
        assert!(
            nash_welfare(&agents, &unfair, &c) >= nash_welfare(&agents, &other, &c) * (1.0 - 1e-3)
        );
    }
}

#[test]
fn equal_slowdown_maximizes_the_minimum() {
    let (agents, c) = (agents(), capacity());
    let slowdown = EqualSlowdown::new().allocate(&agents, &c).unwrap();
    let best_min = egalitarian_welfare(&agents, &slowdown, &c);
    for other in [
        ProportionalElasticity.allocate(&agents, &c).unwrap(),
        EqualShare.allocate(&agents, &c).unwrap(),
        MaxWelfare::without_fairness()
            .allocate(&agents, &c)
            .unwrap(),
    ] {
        assert!(best_min >= egalitarian_welfare(&agents, &other, &c) * (1.0 - 1e-3));
    }
    // And it drives the unfairness index toward 1.
    assert!(unfairness_index(&agents, &slowdown, &c) < 1.01);
}

#[test]
fn fairness_penalty_is_bounded() {
    // The paper's headline: fairness costs < 10% throughput.
    let (agents, c) = (agents(), capacity());
    let fair = MaxWelfare::with_fairness().allocate(&agents, &c).unwrap();
    let unfair = MaxWelfare::without_fairness()
        .allocate(&agents, &c)
        .unwrap();
    let t_fair = weighted_system_throughput(&agents, &fair, &c);
    let t_unfair = weighted_system_throughput(&agents, &unfair, &c);
    assert!(
        t_fair >= 0.9 * t_unfair,
        "fairness penalty too large: {t_fair} vs {t_unfair}"
    );
}

#[test]
fn fair_mechanisms_agree_with_each_other() {
    // "Among the two mechanisms that provide fairness ... no performance
    // difference" (§5.5).
    let (agents, c) = (agents(), capacity());
    let a = ProportionalElasticity.allocate(&agents, &c).unwrap();
    let b = MaxWelfare::with_fairness().allocate(&agents, &c).unwrap();
    let ta = weighted_system_throughput(&agents, &a, &c);
    let tb = weighted_system_throughput(&agents, &b, &c);
    assert!((ta - tb).abs() < 0.05 * ta.max(tb), "{ta} vs {tb}");
}

#[test]
fn every_mechanism_respects_capacity() {
    let (agents, c) = (agents(), capacity());
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(ProportionalElasticity),
        Box::new(EqualShare),
        Box::new(MaxWelfare::with_fairness()),
        Box::new(MaxWelfare::without_fairness()),
        Box::new(EqualSlowdown::new()),
    ];
    for m in mechanisms {
        let alloc = m.allocate(&agents, &c).unwrap();
        for r in 0..2 {
            let used: f64 = alloc.bundles().iter().map(|b| b.get(r)).sum();
            assert!(used <= c.get(r) * (1.0 + 1e-6), "{} resource {r}", m.name());
        }
    }
}
