//! Integration of the SPL analysis with fitted utilities: strategic
//! behavior against realistic (fitted) populations.

use ref_fairness::core::resource::Capacity;
use ref_fairness::core::spl::{best_response, max_gain_from_lying, rescaled_rows};
use ref_fairness::core::utility::CobbDouglas;

/// Builds a population by cycling a few realistic fitted profiles.
fn population(n: usize) -> Vec<CobbDouglas> {
    let prototypes = [
        (0.04, vec![0.12, 0.28]),
        (0.30, vec![0.48, 0.07]),
        (0.80, vec![0.25, 0.26]),
        (0.15, vec![0.40, 0.22]),
    ];
    (0..n)
        .map(|i| {
            let (scale, e) = &prototypes[i % prototypes.len()];
            CobbDouglas::new(*scale, e.clone()).unwrap()
        })
        .collect()
}

#[test]
fn lying_gain_shrinks_with_population() {
    let c = Capacity::new(vec![100.0, 12.0]).unwrap();
    let small = max_gain_from_lying(&rescaled_rows(&population(2)), &c).unwrap();
    let large = max_gain_from_lying(&rescaled_rows(&population(48)), &c).unwrap();
    assert!(large < small, "large {large} vs small {small}");
    assert!(large < 5e-3, "large-system gain too big: {large}");
}

#[test]
fn truthful_report_is_near_optimal_at_64_agents() {
    // The paper's §4.3 example: 64 tasks on a >100 GB/s server.
    let agents = population(64);
    let rows = rescaled_rows(&agents);
    let c = Capacity::new(vec![100.0, 12.0]).unwrap();
    let mut totals = [0.0, 0.0];
    for r in &rows {
        totals[0] += r[0];
        totals[1] += r[1];
    }
    for row in rows.iter().take(8) {
        let others = [totals[0] - row[0], totals[1] - row[1]];
        let g = best_response(row, &others, c.as_slice()).unwrap();
        assert!(g.relative_gain() < 1e-3, "gain {}", g.relative_gain());
        assert!(g.report_deviation(row) < 0.05);
    }
}
