//! A vendored, offline subset of the `criterion` benchmarking API.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! types and macros the workspace's benches use — enough to compile and to
//! *run* each benchmark as a quick smoke pass with wall-clock timing. It
//! does not do statistical analysis, warm-up calibration, or HTML reports;
//! it measures `sample_size` timed iterations per benchmark and prints a
//! mean time, which preserves the benches' value as regression smoke tests
//! and rough throughput probes.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_one(&name.into(), self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (reported alongside times).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.criterion.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.name);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: u64, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<48} {:>10.3?}/iter over {} iters",
        per_iter, bencher.iterations
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 5), &5u64, |b, &n| {
            b.iter(|| total += n)
        });
        group.finish();
        assert_eq!(total, 10);
    }
}
