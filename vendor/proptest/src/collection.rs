//! Collection strategies: `vec` with a size or size range.

use core::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, end: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            end: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            end: r.end() + 1,
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::for_test("collection::fixed");
        let s = vec(0.0..1.0f64, 4usize);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng).len(), 4);
        }
    }

    #[test]
    fn ranged_size_spans_support() {
        let mut rng = TestRng::for_test("collection::ranged");
        let s = vec(0u64..10, 1..4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn nested_tuples_inside_vec() {
        let mut rng = TestRng::for_test("collection::nested");
        let s = vec((0u64..16, 0u64..100), 1..5);
        let v = s.new_value(&mut rng);
        assert!(v.iter().all(|&(a, b)| a < 16 && b < 100));
    }
}
