//! A vendored, offline subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace ships the
//! slice of proptest its test suites actually use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! - numeric range strategies, tuple strategies, and
//!   [`collection::vec`],
//! - [`ProptestConfig`](test_runner::ProptestConfig) with `with_cases`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name) and there
//! is **no shrinking** — a failing case reports the generated values and
//! panics immediately. That trade keeps the implementation small while
//! preserving the load-bearing property: every invariant is exercised
//! against hundreds of pseudo-random inputs on every `cargo test` run.

pub mod strategy;
pub mod test_runner;

pub mod collection;

/// Mirrors `proptest::prelude::prop` far enough for `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

/// The common imports used by test files.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that runs `body` against `config.cases` pseudo-random draws from the
/// argument strategies. The body may use `prop_assert!`-family macros and
/// may `return Ok(())` to accept a case early.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strat = ( $( $strat, )+ );
            for case in 0..config.cases {
                let ( $( $arg, )+ ) =
                    $crate::strategy::Strategy::new_value(&strat, &mut rng);
                let described = format!(
                    concat!( $( stringify!($arg), " = {:?}, ", )+ ),
                    $( &$arg ),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        described
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 2.0..7.5f64, n in 1u32..9) {
            prop_assert!((2.0..7.5).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_size(v in collection::vec(0.0..1.0f64, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }

        #[test]
        fn prop_map_applies(sq in (0i32..100).prop_map(|v| v * v)) {
            let root = (sq as f64).sqrt().round() as i32;
            prop_assert_eq!(root * root, sq);
        }

        #[test]
        fn early_return_accepts(case in 0u64..10) {
            if case % 2 == 0 {
                return Ok(());
            }
            prop_assert!(case % 2 == 1);
        }
    }

    #[test]
    fn generation_is_deterministic_per_test() {
        use crate::strategy::Strategy;
        let s = (0.0..1.0f64, crate::collection::vec(0u64..100, 2..5));
        let mut a = crate::test_runner::TestRng::for_test("same::name");
        let mut b = crate::test_runner::TestRng::for_test("same::name");
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
