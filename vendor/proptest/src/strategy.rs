//! Value-generation strategies: numeric ranges, tuples, and `prop_map`.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating pseudo-random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// A strategy producing one fixed value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.below(span as u64);
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let v = rng.below(span as u64);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::for_test("strategy::ends");
        let s = 0i32..=1;
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn just_repeats_value() {
        let mut rng = TestRng::for_test("strategy::just");
        let s = Just(41);
        assert_eq!(s.new_value(&mut rng), 41);
        assert_eq!(s.new_value(&mut rng), 41);
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = TestRng::for_test("strategy::neg");
        for _ in 0..1000 {
            let v = (-100i32..=100).new_value(&mut rng);
            assert!((-100..=100).contains(&v));
        }
    }
}
