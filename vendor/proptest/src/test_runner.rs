//! Case configuration, failure type, and the deterministic test RNG.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property within one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64 generator seeded from the test's fully qualified name, so
/// every test draws an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name, folded into a fixed tweak so renaming
        // a test re-rolls its stream but runs stay reproducible.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x243F_6A88_85A3_08D3,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`, unbiased via rejection.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let mut a = TestRng::for_test("mod::test_a");
        let mut b = TestRng::for_test("mod::test_b");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TestRng::for_test("runner::below");
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn config_default_is_256() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(16).cases, 16);
    }
}
