//! A vendored, offline subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the thin slice of `rand` it actually uses: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, uniform range sampling for the primitive types
//! that appear in the repo, and unit-interval `f64` generation. Generators
//! themselves live in the sibling `rand_chacha` vendored crate.
//!
//! The implementation is deliberately simple, deterministic, and free of
//! unsafe code; it is *not* byte-compatible with upstream `rand` streams,
//! which is fine because every consumer in this workspace only relies on
//! determinism-per-seed and statistical uniformity, never on exact upstream
//! sequences.

use core::ops::Range;

/// The backend trait implemented by concrete generators.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the given generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = uniform_u64_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let v = uniform_u64_below(rng, span + 1);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every backend.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::rngs` far enough for `rngs::SmallRng`-style fallbacks.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: a tiny, well-distributed 64-bit generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_interval_is_uniformish() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
