//! A vendored, offline subset of `rand_chacha`: the ChaCha8 generator.
//!
//! Implements the genuine ChaCha block function (8 rounds) over a key
//! expanded from a 64-bit seed with SplitMix64. Deterministic per seed and
//! statistically strong; not byte-compatible with upstream `rand_chacha`
//! streams (nothing in this workspace depends on the upstream byte stream,
//! only on per-seed determinism).

use rand::{RngCore, SeedableRng};

/// Re-export of the trait home, mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// The ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Constants + key + counter + nonce, per the ChaCha state layout.
    state: [u32; 16],
    /// Buffered output of the last block.
    buffer: [u32; 16],
    /// Next unread word in `buffer` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        // Expand the seed into a 256-bit key with SplitMix64 (the same
        // expansion upstream rand uses for seed_from_u64).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buffer: [0u32; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Second moment of U(0,1) is 1/3.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let m2: f64 = (0..n).map(|_| rng.gen::<f64>().powi(2)).sum::<f64>() / n as f64;
        assert!((m2 - 1.0 / 3.0).abs() < 0.01, "m2 {m2}");
    }

    #[test]
    fn range_draws_cover_support() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
